//! Property-based tests for the ft-core invariants.

use ft_core::access::{access_set, grid_access_count, AccessDir};
use ft_core::certify::{certify_with_budget, expander_fault_audit};
use ft_core::lowerbound::lemma1_short_paths;
use ft_core::network::{FtNetwork, Side};
use ft_core::params::Params;
use ft_core::repair::Survivor;
use ft_core::routing;
use ft_core::theory;
use ft_failure::{FailureInstance, FailureModel};
use ft_graph::gen::{random_lemma1_tree, rng};
use ft_graph::tree::leaves;
use ft_graph::Digraph;
use ft_networks::CircuitRouter;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lemma 1's guarantee on arbitrary random trees: ≥ l/42 paths,
    /// all edge-disjoint, all of length ≤ 3.
    #[test]
    fn lemma1_bound_and_disjointness(seed in 0u64..5000, target in 4usize..200) {
        let mut r = rng(seed);
        let tree = random_lemma1_tree(&mut r, target);
        let l = leaves(&tree).len();
        let res = lemma1_short_paths(&tree);
        prop_assert_eq!(res.num_leaves, l);
        prop_assert!(res.meets_l_over_42());
        let mut used = std::collections::HashSet::new();
        for p in &res.paths {
            prop_assert!(!p.edges.is_empty() && p.edges.len() <= 3);
            prop_assert_ne!(p.ends.0, p.ends.1);
            for &e in &p.edges {
                prop_assert!(used.insert(e), "edge reused");
            }
        }
    }

    /// The census formulas predict the built size exactly, for any
    /// profile in the supported range.
    #[test]
    fn census_formula_exact(nu in 1u32..3, width_exp in 1u32..4, degree in 1usize..7) {
        let width = 2usize << width_exp; // 4..16, even
        let p = Params::reduced(nu, width, degree, 1.0);
        let ftn = FtNetwork::build(p);
        prop_assert_eq!(ftn.net().size(), p.predicted_size());
        prop_assert_eq!(ftn.census().total(), p.predicted_size());
        prop_assert_eq!(ftn.net().depth(), 4 * nu);
        prop_assert!(ftn.net().validate().is_ok());
    }

    /// Repair invariant: every switch between routable-alive vertices
    /// is in the normal state, for arbitrary ε and seed.
    #[test]
    fn repair_invariant(seed in 0u64..10_000, eps_mil in 0u32..300_000) {
        let eps = eps_mil as f64 / 1_000_000.0; // 0 .. 0.3
        let ftn = FtNetwork::build(Params::reduced(1, 8, 4, 1.0));
        let model = FailureModel::symmetric(eps);
        let mut r = rng(seed);
        let inst = FailureInstance::sample(&model, &mut r, ftn.net().num_edges());
        let s = Survivor::new(&ftn, &inst);
        prop_assert!(s.invariant_holds(&inst));
        // terminals always alive
        for j in 0..ftn.n() {
            prop_assert!(s.is_alive(ftn.input(j)));
            prop_assert!(s.is_alive(ftn.output(j)));
        }
    }

    /// Access is monotone: killing extra vertices never increases the
    /// grid access count.
    #[test]
    fn grid_access_monotone(seed in 0u64..5000, kills in 1usize..30) {
        let ftn = FtNetwork::build(Params::reduced(1, 8, 4, 1.0));
        let mut r = rng(seed);
        let model = FailureModel::symmetric(0.01);
        let inst = FailureInstance::sample(&model, &mut r, ftn.net().num_edges());
        let s = Survivor::new(&ftn, &inst);
        let mut alive = s.routable_alive();
        let before = grid_access_count(&ftn, &alive, Side::Input, 0);
        // kill `kills` random grid vertices of grid 0
        use rand::Rng;
        for _ in 0..kills {
            let row = r.random_range(0..ftn.rows());
            alive[ftn.grid_vertex(Side::Input, 0, row, 0).index()] = false;
        }
        let after = grid_access_count(&ftn, &alive, Side::Input, 0);
        prop_assert!(after <= before, "access grew: {before} -> {after}");
    }

    /// Certification budgets are monotone: passing a tight budget
    /// implies passing any looser one.
    #[test]
    fn budget_monotonicity(seed in 0u64..5000) {
        let ftn = FtNetwork::build(Params::reduced(1, 8, 4, 1.0));
        let model = FailureModel::symmetric(0.005);
        let mut r = rng(seed);
        let inst = FailureInstance::sample(&model, &mut r, ftn.net().num_edges());
        let tight = certify_with_budget(&ftn, &inst, 0.02);
        let loose = certify_with_budget(&ftn, &inst, 0.2);
        if tight.expander_budget_ok {
            prop_assert!(loose.expander_budget_ok);
        }
        // non-budget fields agree (they don't depend on the budget)
        prop_assert_eq!(tight.terminals_distinct, loose.terminals_distinct);
        prop_assert_eq!(tight.grids_majority, loose.grids_majority);
    }

    /// The fault-free network routes every random permutation greedily.
    #[test]
    fn fault_free_routes_all_perms(seed in 0u64..10_000) {
        let ftn = FtNetwork::build(Params::reduced(1, 8, 8, 1.0));
        let mut r = rng(seed);
        let perm = routing::random_perm(&mut r, ftn.n());
        let mut router = CircuitRouter::new(ftn.net());
        let (stats, sessions) = routing::route_permutation(&mut router, &ftn, &perm);
        prop_assert!(stats.all_connected(), "{:?}", stats);
        prop_assert!(routing::sessions_disjoint(&router, &sessions));
        // disconnect everything: the network must be reusable
        for id in sessions {
            router.disconnect(id);
        }
        let perm2 = routing::random_perm(&mut r, ftn.n());
        let (stats2, _) = routing::route_permutation(&mut router, &ftn, &perm2);
        prop_assert!(stats2.all_connected());
    }

    /// Theory bounds are probabilities, and monotone in ε.
    #[test]
    fn theory_bounds_sane(nu in 1u32..5, eps_a in 1u32..1000u32, eps_b in 1u32..1000u32) {
        let p = Params::paper_exact(nu);
        let (lo, hi) = if eps_a <= eps_b { (eps_a, eps_b) } else { (eps_b, eps_a) };
        let (lo, hi) = (lo as f64 * 1e-6, hi as f64 * 1e-6);
        for f in [theory::lemma3_grid_failure_bound,
                  theory::lemma5_family_bound,
                  theory::lemma6_majority_failure_bound,
                  theory::lemma7_shorting_bound,
                  theory::theorem2_failure_bound] {
            let a = f(&p, lo);
            let b = f(&p, hi);
            prop_assert!((0.0..=1.0).contains(&a));
            prop_assert!((0.0..=1.0).contains(&b));
            prop_assert!(a <= b + 1e-12, "bound not monotone: {a} > {b}");
        }
    }

    /// The fault audit counts what it is told to count.
    #[test]
    fn fault_audit_counts(dead in 0usize..32) {
        let ftn = FtNetwork::build(Params::reduced(1, 8, 4, 1.0));
        let mut alive = vec![true; ftn.net().num_vertices()];
        let range = ftn.middle_group_range(1, 0);
        let size = range.len();
        for i in range.clone().take(dead) {
            alive[i as usize] = false;
        }
        let frac = dead as f64 / size as f64;
        let (ok_tight, max_frac) = expander_fault_audit(&ftn, &alive, frac - 1e-9);
        let (ok_loose, _) = expander_fault_audit(&ftn, &alive, frac + 1e-9);
        prop_assert!((max_frac - frac).abs() < 1e-9);
        prop_assert!(ok_loose);
        if dead > 0 {
            prop_assert!(!ok_tight);
        }
    }

    /// Forward and backward access are symmetric on the mirror
    /// structure: output j's backward reach into the middle equals in
    /// distribution input j's forward reach (structural check: both
    /// reach a nonempty subset bounded by the stage width).
    #[test]
    fn access_direction_sanity(seed in 0u64..2000) {
        let ftn = FtNetwork::build(Params::reduced(1, 8, 8, 1.0));
        let model = FailureModel::symmetric(0.002);
        let mut r = rng(seed);
        let inst = FailureInstance::sample(&model, &mut r, ftn.net().num_edges());
        let s = Survivor::new(&ftn, &inst);
        let alive = s.routable_alive();
        let fwd = access_set(ftn.net(), ftn.input(0), AccessDir::Forward,
                             |v| alive[v.index()]);
        let bwd = access_set(ftn.net(), ftn.output(0), AccessDir::Backward,
                             |v| alive[v.index()]);
        let mid = ftn.stage_base(2)..ftn.stage_base(2) + ftn.width() as u32;
        let cf = mid.clone().filter(|&i| fwd[i as usize]).count();
        let cb = mid.clone().filter(|&i| bwd[i as usize]).count();
        prop_assert!(cf <= ftn.width() && cb <= ftn.width());
        // fault-free both reach > 0; with eps=0.002 the grid survives
        // essentially always at l=32
        prop_assert!(cf > 0 && cb > 0);
    }
}
