//! Crash-consistent file output: write to a temporary sibling, rename
//! into place.
//!
//! Every artifact the CLIs persist — JSON reports, CSV tables, NDJSON
//! traces, cell-cache files, server metric snapshots — is consumed by
//! downstream tooling that parses it wholesale (`cmp` in CI, the cache
//! loader, the snapshot restorer). A process killed mid-`write` must
//! therefore never leave a torn file under the final name: the torn
//! bytes would half-parse instead of cleanly missing. [`write_atomic`]
//! gives every call site the same discipline the ft-exp cell cache
//! pioneered: the content lands under a `.tmp`-suffixed sibling first
//! and is renamed over the destination, which is atomic on POSIX
//! filesystems (the destination either holds the old content or the
//! complete new content, never a prefix).

use std::ffi::OsString;
use std::io;
use std::path::Path;

/// Writes `contents` to `path` via a temporary sibling + rename, so an
/// interrupted writer can never leave a partial file at `path`.
///
/// The sibling lives in the same directory (renames across filesystems
/// are not atomic) and carries a `.tmp` suffix appended to the full
/// file name, so distinct targets in one directory never collide. On
/// any error the sibling is removed best-effort.
pub fn write_atomic(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let path = path.as_ref();
    let mut tmp_name = OsString::from(path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("no file name in {}", path.display()),
        )
    })?);
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, contents.as_ref()).and_then(|()| {
        std::fs::rename(&tmp, path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ft_obs_atomicio_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_content_and_removes_sibling() {
        let dir = scratch_dir("basic");
        let path = dir.join("report.json");
        write_atomic(&path, "{\"ok\": true}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\": true}\n");
        assert!(
            !dir.join("report.json.tmp").exists(),
            "temporary sibling must not survive"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replaces_existing_file_wholesale() {
        let dir = scratch_dir("replace");
        let path = dir.join("table.csv");
        write_atomic(&path, "old").unwrap();
        write_atomic(&path, "new content, longer").unwrap();
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "new content, longer"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_parent_directory_errors_without_torn_target() {
        let dir = scratch_dir("noparent");
        let path = dir.join("absent").join("out.json");
        assert!(write_atomic(&path, "x").is_err());
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
