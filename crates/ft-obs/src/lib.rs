//! Observability layer for the fault-tolerant switching stack.
//!
//! Three independent pieces, all bound by the repo's byte-reproducibility
//! contract:
//!
//! * **Tracing** — the [`Observer`] trait the simulation engine is
//!   generic over, the [`Noop`] zero-cost default, and the [`TraceBuf`]
//!   deterministic-NDJSON serializer behind `ftsim --trace FILE`; the
//!   `trace_diff` bin (built from [`first_divergence`]) locates the
//!   first diverging event between two trace files.
//! * **Streaming histograms** — [`Hist`], a sparse log-bucketed
//!   histogram with an exact `u64`-count sorted-bucket merge, so
//!   p50/p99/p999 summaries are byte-identical however the sample
//!   stream was partitioned across seeds, threads, or cache runs.
//! * **Profiling** — [`Profiler`] wall-clock phase sections and the
//!   [`KvLine`] accounting-line formatter, rendered to stderr only so
//!   reports and study tables stay byte-stable.
//! * **Crash-consistent output** — [`write_atomic`], the
//!   temp-sibling-then-rename discipline every persisted artifact
//!   (reports, CSV tables, traces, cache cells, server snapshots) goes
//!   through so an interrupted run never leaves a torn file under a
//!   final name.
//!
//! The crate is a dependency leaf (std only): `ft-sim`, `ft-exp`, and
//! the binaries layer it over the engine without cycles.

pub mod atomicio;
pub mod diff;
pub mod event;
pub mod hist;
pub mod profile;

pub use atomicio::write_atomic;
pub use diff::{first_divergence, TraceDiff};
pub use event::{Noop, Observer, TraceBuf, TraceEvent};
pub use hist::{bucket_index, bucket_lower_edge, Hist, NUM_BUCKETS};
pub use profile::{KvLine, Profiler};
