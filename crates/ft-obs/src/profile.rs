//! Profiling hooks: `key=value` stderr accounting lines and per-phase
//! wall-clock sections.
//!
//! Everything here renders to *stderr only* by convention — profiling is
//! wall-clock and therefore non-deterministic, so it must never leak
//! into report JSON, study tables, or anything else the byte-stability
//! contracts cover. [`KvLine`] is the one formatter for accounting
//! lines, so `cells total=… computed=…`-style output stays a single
//! consistent format across binaries.

use std::fmt::Display;
use std::fmt::Write as _;
use std::time::Instant;

/// Builder for one `label key=value key=value …` accounting line.
#[derive(Clone, Debug)]
pub struct KvLine {
    buf: String,
}

impl KvLine {
    /// Starts a line with a fixed label (may itself contain spaces or a
    /// trailing colon — it is emitted verbatim).
    pub fn new(label: &str) -> Self {
        KvLine {
            buf: label.to_string(),
        }
    }

    /// Appends ` key=value` with `value`'s `Display` form.
    pub fn kv(mut self, key: &str, value: impl Display) -> Self {
        let _ = write!(self.buf, " {key}={value}");
        self
    }

    /// Appends ` key=value` with one decimal place (the wall-clock
    /// milliseconds convention).
    pub fn kv_f1(mut self, key: &str, value: f64) -> Self {
        let _ = write!(self.buf, " {key}={value:.1}");
        self
    }

    pub fn finish(self) -> String {
        self.buf
    }
}

/// Named wall-clock phase sections, collected in execution order.
///
/// A disabled profiler still runs every closure (profiling must never
/// change behavior) but records nothing and renders no lines.
#[derive(Clone, Debug)]
pub struct Profiler {
    enabled: bool,
    sections: Vec<(String, f64)>,
}

impl Profiler {
    pub fn new(enabled: bool) -> Self {
        Profiler {
            enabled,
            sections: Vec::new(),
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Times `f` as phase `name` (when enabled) and returns its result.
    pub fn section<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        if !self.enabled {
            return f();
        }
        let start = Instant::now();
        let out = f();
        self.add_ms(name, start.elapsed().as_secs_f64() * 1e3);
        out
    }

    /// Records an externally measured phase duration in milliseconds.
    pub fn add_ms(&mut self, name: &str, ms: f64) {
        if self.enabled {
            self.sections.push((name.to_string(), ms));
        }
    }

    /// Renders one `phase <name> ms=<t>` line per recorded section, in
    /// execution order. Empty when disabled.
    pub fn lines(&self) -> Vec<String> {
        self.sections
            .iter()
            .map(|(name, ms)| {
                KvLine::new(&format!("phase {name}"))
                    .kv_f1("ms", *ms)
                    .finish()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kvline_reproduces_the_accounting_formats() {
        // The exact bytes CI greps for in ftexp's stderr.
        let summary = KvLine::new("cells")
            .kv("total", 4)
            .kv("computed", 4)
            .kv("cached", 0)
            .kv("skipped", 0)
            .finish();
        assert_eq!(summary, "cells total=4 computed=4 cached=0 skipped=0");
        let timing = KvLine::new("cell wall-time ms:")
            .kv("computed", 3)
            .kv_f1("mean", 12.06)
            .kv_f1("max", 20.0)
            .finish();
        assert_eq!(timing, "cell wall-time ms: computed=3 mean=12.1 max=20.0");
    }

    #[test]
    fn profiler_records_sections_in_order_when_enabled() {
        let mut p = Profiler::new(true);
        let x = p.section("parse", || 2 + 2);
        assert_eq!(x, 4);
        p.add_ms("render", 3.12);
        let lines = p.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("phase parse ms="), "{}", lines[0]);
        assert_eq!(lines[1], "phase render ms=3.1");
    }

    #[test]
    fn disabled_profiler_runs_closures_but_stays_silent() {
        let mut p = Profiler::new(false);
        let mut ran = false;
        p.section("work", || ran = true);
        p.add_ms("ignored", 9.9);
        assert!(ran);
        assert!(!p.enabled());
        assert!(p.lines().is_empty());
    }
}
