//! The structured trace-event vocabulary and the [`Observer`] trait the
//! simulation engine is generic over.
//!
//! The engine calls [`Observer::event`] at every semantic event it
//! processes, stamped with the event's `(sim-time, seq)` — the same total
//! order the event-stream fingerprint folds over. The default observer is
//! [`Noop`], a zero-sized type whose `event` body is empty: the engine is
//! monomorphized per observer, so with `Noop` every emission site compiles
//! to nothing (path scratch included — sites gate on
//! [`Observer::ENABLED`]) and the hot loop is byte-for-byte the pre-trace
//! engine, pinned by the golden event-stream fingerprints and the gated
//! sim benches.

use std::fmt::Write as _;

/// One structured simulation event, borrowed from engine state.
///
/// `token` is the session token of the call involved (unique per
/// admitted call within a run); `path` is the circuit's vertex-id route
/// through the fabric where one exists.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent<'a> {
    /// A live call arrival sampled `src → dst` (terminal indices).
    Arrival { src: u32, dst: u32 },
    /// The arrival was admitted with a circuit along `path`.
    Connect {
        token: u32,
        src: u32,
        dst: u32,
        path: &'a [u32],
    },
    /// The arrival found an endpoint already in use.
    BusyReject { src: u32, dst: u32 },
    /// The arrival found no idle path (the paper's blocking event).
    Block { src: u32, dst: u32 },
    /// An established call hung up normally.
    Hangup { token: u32 },
    /// A switch failed (`open` = stuck-open, else stuck-closed);
    /// `episode` marks the first strike of a new storm episode.
    Fault {
        switch: u32,
        open: bool,
        episode: bool,
    },
    /// The fault killed this session's circuit.
    Kill { token: u32, slot: u32 },
    /// A reroute attempt for a killed call; on success `token`/`path`
    /// identify the re-established circuit (0/empty on failure).
    Reroute {
        token: u32,
        src: u32,
        dst: u32,
        ok: bool,
        path: &'a [u32],
    },
    /// A scheduled backoff retry fired for a still-pending call.
    Retry { token: u32 },
    /// The degradation ladder shed a killed call without retrying.
    Shed { token: u32, src: u32, dst: u32 },
    /// A failed switch was repaired.
    Repair { switch: u32 },
    /// A degraded episode closed; `span` is its length in sim-time.
    RecoveryClose { span: f64 },
}

impl TraceEvent<'_> {
    /// The `ev` tag the NDJSON serialization uses.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::Arrival { .. } => "arrival",
            TraceEvent::Connect { .. } => "connect",
            TraceEvent::BusyReject { .. } => "busy_reject",
            TraceEvent::Block { .. } => "block",
            TraceEvent::Hangup { .. } => "hangup",
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::Kill { .. } => "kill",
            TraceEvent::Reroute { .. } => "reroute",
            TraceEvent::Retry { .. } => "retry",
            TraceEvent::Shed { .. } => "shed",
            TraceEvent::Repair { .. } => "repair",
            TraceEvent::RecoveryClose { .. } => "recovery_close",
        }
    }
}

/// A sink for the engine's structured event stream.
///
/// Implementations must be deterministic functions of the event sequence
/// alone — the engine guarantees it calls `event` in `(time, seq)` order
/// and never consults the observer, so an observer can never perturb the
/// simulation (the golden fingerprints pin this).
pub trait Observer {
    /// Whether emission sites should do any work at all. The engine
    /// gates path-materialisation scratch on this constant, so a
    /// disabled observer pays nothing, not even a branch.
    const ENABLED: bool = true;

    /// One event at simulation time `time`, queue sequence `seq`.
    fn event(&mut self, time: f64, seq: u64, ev: &TraceEvent<'_>);
}

/// The disabled observer: a zero-sized no-op the engine monomorphizes
/// away entirely.
#[derive(Clone, Copy, Debug, Default)]
pub struct Noop;

impl Observer for Noop {
    const ENABLED: bool = false;

    #[inline(always)]
    fn event(&mut self, _time: f64, _seq: u64, _ev: &TraceEvent<'_>) {}
}

/// An observer serializing every event as one line of deterministic
/// NDJSON into an in-memory buffer.
///
/// Numbers are rendered with Rust's shortest-round-trip float formatting
/// and keys appear in a fixed order per event kind, so the same event
/// stream always produces the same bytes — `trace_diff` compares traces
/// line-by-line on that guarantee.
#[derive(Clone, Debug, Default)]
pub struct TraceBuf {
    buf: String,
    lines: u64,
}

impl TraceBuf {
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes a seed header line. Sweep drivers call this once per seed
    /// before running it, so a multi-seed trace file concatenated in
    /// seed order is self-describing (and independent of thread count).
    pub fn begin_seed(&mut self, seed: u64) {
        let _ = writeln!(self.buf, "{{\"ev\":\"seed\",\"seed\":{seed}}}");
        self.lines += 1;
    }

    /// Number of NDJSON lines written (seed headers included).
    pub fn lines(&self) -> u64 {
        self.lines
    }

    pub fn as_str(&self) -> &str {
        &self.buf
    }

    pub fn into_string(self) -> String {
        self.buf
    }
}

fn push_path(buf: &mut String, path: &[u32]) {
    buf.push('[');
    for (i, v) in path.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        let _ = write!(buf, "{v}");
    }
    buf.push(']');
}

impl Observer for TraceBuf {
    fn event(&mut self, time: f64, seq: u64, ev: &TraceEvent<'_>) {
        let buf = &mut self.buf;
        let _ = write!(buf, "{{\"t\":{time},\"seq\":{seq},\"ev\":\"{}\"", ev.tag());
        match *ev {
            TraceEvent::Arrival { src, dst }
            | TraceEvent::BusyReject { src, dst }
            | TraceEvent::Block { src, dst } => {
                let _ = write!(buf, ",\"src\":{src},\"dst\":{dst}");
            }
            TraceEvent::Connect {
                token,
                src,
                dst,
                path,
            } => {
                let _ = write!(
                    buf,
                    ",\"token\":{token},\"src\":{src},\"dst\":{dst},\"path\":"
                );
                push_path(buf, path);
            }
            TraceEvent::Hangup { token } | TraceEvent::Retry { token } => {
                let _ = write!(buf, ",\"token\":{token}");
            }
            TraceEvent::Fault {
                switch,
                open,
                episode,
            } => {
                let _ = write!(
                    buf,
                    ",\"switch\":{switch},\"open\":{open},\"episode\":{episode}"
                );
            }
            TraceEvent::Kill { token, slot } => {
                let _ = write!(buf, ",\"token\":{token},\"slot\":{slot}");
            }
            TraceEvent::Reroute {
                token,
                src,
                dst,
                ok,
                path,
            } => {
                let _ = write!(
                    buf,
                    ",\"token\":{token},\"src\":{src},\"dst\":{dst},\"ok\":{ok},\"path\":"
                );
                push_path(buf, path);
            }
            TraceEvent::Shed { token, src, dst } => {
                let _ = write!(buf, ",\"token\":{token},\"src\":{src},\"dst\":{dst}");
            }
            TraceEvent::Repair { switch } => {
                let _ = write!(buf, ",\"switch\":{switch}");
            }
            TraceEvent::RecoveryClose { span } => {
                let _ = write!(buf, ",\"span\":{span}");
            }
        }
        buf.push_str("}\n");
        self.lines += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<Noop>(), 0);
        const { assert!(!Noop::ENABLED) };
        const { assert!(TraceBuf::ENABLED) };
    }

    #[test]
    fn ndjson_lines_are_deterministic_and_wellformed() {
        let emit = |obs: &mut TraceBuf| {
            obs.begin_seed(7);
            obs.event(0.5, 1, &TraceEvent::Arrival { src: 0, dst: 3 });
            obs.event(
                0.5,
                1,
                &TraceEvent::Connect {
                    token: 0,
                    src: 0,
                    dst: 3,
                    path: &[2, 9, 14],
                },
            );
            obs.event(
                1.25,
                4,
                &TraceEvent::Fault {
                    switch: 11,
                    open: true,
                    episode: false,
                },
            );
            obs.event(1.25, 4, &TraceEvent::Kill { token: 0, slot: 0 });
            obs.event(
                1.25,
                4,
                &TraceEvent::Reroute {
                    token: 1,
                    src: 0,
                    dst: 3,
                    ok: true,
                    path: &[2, 10, 14],
                },
            );
            obs.event(9.0, 20, &TraceEvent::RecoveryClose { span: 7.75 });
        };
        let mut a = TraceBuf::new();
        let mut b = TraceBuf::new();
        emit(&mut a);
        emit(&mut b);
        assert_eq!(a.as_str(), b.as_str());
        assert_eq!(a.lines(), 7);
        assert_eq!(a.as_str().lines().next(), Some(r#"{"ev":"seed","seed":7}"#));
        assert!(a.as_str().lines().any(|l| l
            == r#"{"t":0.5,"seq":1,"ev":"connect","token":0,"src":0,"dst":3,"path":[2,9,14]}"#));
        assert!(a
            .as_str()
            .lines()
            .any(|l| l
                == r#"{"t":1.25,"seq":4,"ev":"fault","switch":11,"open":true,"episode":false}"#));
        // Every line is brace-delimited and newline-terminated.
        assert!(a.as_str().ends_with('\n'));
        for line in a.as_str().lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }
}
