//! `trace_diff A B` — locate the first diverging event between two
//! `ftsim --trace` NDJSON files.
//!
//! Exit status: 0 when the traces are identical, 1 on a divergence
//! (the 0-based line index and both conflicting lines are printed),
//! 2 on usage or I/O errors. Designed for CI: a fingerprint mismatch
//! becomes an exact event to stare at.

use ft_obs::{first_divergence, TraceDiff};
use std::process::ExitCode;

fn render(side: Option<&str>) -> &str {
    side.unwrap_or("<end of trace>")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [left_path, right_path] = match args.as_slice() {
        [a, b] => [a, b],
        _ => {
            eprintln!("usage: trace_diff LEFT.ndjson RIGHT.ndjson");
            return ExitCode::from(2);
        }
    };
    let read = |path: &str| -> Result<String, ExitCode> {
        std::fs::read_to_string(path).map_err(|e| {
            eprintln!("trace_diff: cannot read {path}: {e}");
            ExitCode::from(2)
        })
    };
    let left = match read(left_path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let right = match read(right_path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    match first_divergence(&left, &right) {
        TraceDiff::Identical { lines } => {
            println!("trace_diff: traces identical ({lines} events)");
            ExitCode::SUCCESS
        }
        TraceDiff::Divergence { index, left, right } => {
            println!("trace_diff: first divergence at event {index}");
            println!("- {}", render(left.as_deref()));
            println!("+ {}", render(right.as_deref()));
            ExitCode::from(1)
        }
    }
}
