//! First-divergence search between two NDJSON traces.
//!
//! Traces are compared line-by-line in order: the first index where the
//! two files disagree (or where one ends early) is *the* first diverging
//! event, because both files are written in the engine's deterministic
//! `(time, seq)` order. This turns a "fingerprints differ" CI failure
//! into an actionable event index plus the two conflicting lines.

/// Outcome of comparing two traces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceDiff {
    /// Every line matched.
    Identical {
        /// Number of lines compared.
        lines: usize,
    },
    /// The traces disagree, first at line `index` (0-based).
    Divergence {
        index: usize,
        /// The left trace's line, or `None` if it ended first.
        left: Option<String>,
        /// The right trace's line, or `None` if it ended first.
        right: Option<String>,
    },
}

/// Locates the first line where two traces disagree.
pub fn first_divergence(a: &str, b: &str) -> TraceDiff {
    let mut la = a.lines();
    let mut lb = b.lines();
    let mut index = 0usize;
    loop {
        match (la.next(), lb.next()) {
            (None, None) => return TraceDiff::Identical { lines: index },
            (x, y) if x == y => index += 1,
            (x, y) => {
                return TraceDiff::Divergence {
                    index,
                    left: x.map(str::to_string),
                    right: y.map(str::to_string),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_traces_report_line_count() {
        let t =
            "{\"ev\":\"seed\",\"seed\":1}\n{\"t\":0.5,\"seq\":1,\"ev\":\"retry\",\"token\":0}\n";
        assert_eq!(first_divergence(t, t), TraceDiff::Identical { lines: 2 });
        assert_eq!(first_divergence("", ""), TraceDiff::Identical { lines: 0 });
    }

    #[test]
    fn divergence_reports_first_mismatching_line() {
        let a = "same\nleft\ntail\n";
        let b = "same\nright\ntail\n";
        assert_eq!(
            first_divergence(a, b),
            TraceDiff::Divergence {
                index: 1,
                left: Some("left".to_string()),
                right: Some("right".to_string()),
            }
        );
    }

    #[test]
    fn truncation_counts_as_divergence() {
        let a = "one\ntwo\n";
        let b = "one\n";
        assert_eq!(
            first_divergence(a, b),
            TraceDiff::Divergence {
                index: 1,
                left: Some("two".to_string()),
                right: None,
            }
        );
        // Symmetric case.
        assert_eq!(
            first_divergence(b, a),
            TraceDiff::Divergence {
                index: 1,
                left: None,
                right: Some("two".to_string()),
            }
        );
    }
}
