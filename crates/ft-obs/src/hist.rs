//! Deterministic log-bucketed streaming histogram.
//!
//! `Hist` replaces full per-sample vectors for latency/occupancy style
//! distributions: memory is O(occupied buckets) instead of O(samples),
//! and two histograms merge by summing counts bucket-by-bucket — an
//! associative, commutative operation on exact `u64` counters, so the
//! merged result (and every quantile read from it) is byte-identical
//! regardless of how samples were partitioned across seeds, threads, or
//! cache generations.
//!
//! # Bucket layout
//!
//! Buckets are derived from the IEEE-754 bit pattern of the sample, so
//! indexing is exact integer arithmetic (no `log()` calls, no
//! platform-dependent rounding):
//!
//! * bucket `0` — values `<= 0` (and `-0.0`),
//! * bucket `1` — underflow: positive values below `2^-32`,
//! * buckets `2 ..= 2049` — one octave per power of two in
//!   `[2^-32, 2^32)`, each split into 32 linear sub-buckets keyed by the
//!   top 5 mantissa bits (relative width `2^-5`, i.e. ≤ 3.125% error at
//!   the bucket's lower edge),
//! * bucket `2050` — overflow: values `>= 2^32` (including `+inf`).
//!
//! Every non-negative integer `0 ..= 63` lands exactly on a bucket lower
//! edge, so quantiles over small-integer samples (event-count latencies,
//! path lengths, occupancies) are *exact*; continuous samples report the
//! lower edge of their bucket.

/// Bucket for values `<= 0`.
const ZERO: u32 = 0;
/// Bucket for positive values below `2^MIN_EXP`.
const UNDERFLOW: u32 = 1;
/// First octave bucket.
const FIRST_NORMAL: u32 = 2;
/// Number of octaves covered exactly: unbiased exponents `-32 ..= 31`.
const OCTAVES: u32 = 64;
/// Linear sub-buckets per octave (top 5 mantissa bits).
const SUBBUCKETS: u32 = 32;
/// Bucket for values `>= 2^(MAX_EXP+1)` (including `+inf`).
const OVERFLOW: u32 = FIRST_NORMAL + OCTAVES * SUBBUCKETS;
const MIN_EXP: i32 = -32;
const MAX_EXP: i32 = 31;

/// Map a sample to its bucket index. Total ordering of buckets matches
/// the ordering of the values they cover.
#[inline]
pub fn bucket_index(v: f64) -> u32 {
    if v.is_nan() {
        // NaN has no place on the value axis; park it deterministically
        // in the overflow bucket rather than poisoning the histogram.
        return OVERFLOW;
    }
    if v <= 0.0 {
        return ZERO;
    }
    let bits = v.to_bits();
    let biased = (bits >> 52) as i32; // sign bit is clear: v > 0
    if biased == 0 {
        return UNDERFLOW; // subnormal
    }
    let e = biased - 1023;
    if e < MIN_EXP {
        return UNDERFLOW;
    }
    if e > MAX_EXP {
        return OVERFLOW; // includes +inf (biased exponent 2047)
    }
    let sub = ((bits >> 47) & 0x1f) as u32;
    FIRST_NORMAL + (e - MIN_EXP) as u32 * SUBBUCKETS + sub
}

/// Total number of buckets: the length of dense bucket-indexed scratch
/// arrays that hot recording loops accumulate into before folding them
/// in via [`Hist::record_bucket_n`].
pub const NUM_BUCKETS: usize = OVERFLOW as usize + 1;

/// Lower edge of a bucket: the smallest value that maps into it (0.0 for
/// the zero and underflow buckets, `2^32` for overflow). Quantiles
/// report this edge, which keeps them exact for integer samples below 64.
#[inline]
pub fn bucket_lower_edge(idx: u32) -> f64 {
    if idx <= UNDERFLOW {
        return 0.0;
    }
    if idx >= OVERFLOW {
        return 4_294_967_296.0; // 2^32
    }
    let k = (idx - FIRST_NORMAL) as u64;
    let octave = k / SUBBUCKETS as u64;
    let sub = k % SUBBUCKETS as u64;
    // biased exponent = (octave + MIN_EXP) + 1023 = octave + 991
    f64::from_bits((octave + 991) << 52 | sub << 47)
}

/// Sparse streaming histogram over log-spaced buckets.
///
/// Occupied buckets are kept as a `(index, count)` vector sorted by
/// index, so equality, hashing of the rendered form, and the cache text
/// encoding are all canonical: two histograms built from the same
/// multiset of samples — in any order, across any partition — are equal
/// and render to identical bytes.
#[derive(Clone, Debug, Default)]
pub struct Hist {
    buckets: Vec<(u32, u64)>,
    /// Cursor to the bucket the last `record*` touched — a pure lookup
    /// cache (excluded from equality) that makes streams of repeating
    /// or slowly drifting values (occupancies, path lengths, setup
    /// costs) O(1) per sample instead of a binary search.
    cursor: usize,
}

/// Equality is over the recorded distribution only; the record cursor
/// is a lookup cache and never observable.
impl PartialEq for Hist {
    fn eq(&self, other: &Self) -> bool {
        self.buckets == other.buckets
    }
}

impl Eq for Hist {}

impl Hist {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: f64) {
        self.record_n(v, 1);
    }

    /// Record `n` samples of the same value.
    #[inline]
    pub fn record_n(&mut self, v: f64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = bucket_index(v);
        if let Some(&mut (i, ref mut c)) = self.buckets.get_mut(self.cursor) {
            if i == idx {
                *c += n;
                return;
            }
        }
        self.record_slow(idx, n);
    }

    /// Record `n` samples directly into bucket `idx` (as produced by
    /// [`bucket_index`]): the fold side of dense-scratch accumulation,
    /// equivalent to `record_n` of any value mapping to `idx`.
    pub fn record_bucket_n(&mut self, idx: u32, n: u64) {
        assert!(idx <= OVERFLOW, "bucket index {idx} out of range");
        if n > 0 {
            self.record_slow(idx, n);
        }
    }

    /// Binary-search fallback when the cursor misses; keeps the hot
    /// `record_n` body small enough to inline at every call site.
    fn record_slow(&mut self, idx: u32, n: u64) {
        match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
            Ok(pos) => {
                self.buckets[pos].1 += n;
                self.cursor = pos;
            }
            Err(pos) => {
                self.buckets.insert(pos, (idx, n));
                self.cursor = pos;
            }
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|&(_, c)| c).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Number of occupied buckets (the memory bound).
    pub fn occupied(&self) -> usize {
        self.buckets.len()
    }

    /// Fold another histogram into this one: a sorted merge summing
    /// counts per bucket. Associative and commutative, and therefore
    /// byte-identical no matter how the sample stream was partitioned.
    pub fn merge(&mut self, other: &Hist) {
        if other.buckets.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (0, 0);
        while a < self.buckets.len() && b < other.buckets.len() {
            let (ia, ca) = self.buckets[a];
            let (ib, cb) = other.buckets[b];
            match ia.cmp(&ib) {
                std::cmp::Ordering::Less => {
                    merged.push((ia, ca));
                    a += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push((ib, cb));
                    b += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push((ia, ca + cb));
                    a += 1;
                    b += 1;
                }
            }
        }
        merged.extend_from_slice(&self.buckets[a..]);
        merged.extend_from_slice(&other.buckets[b..]);
        self.buckets = merged;
        self.cursor = 0;
    }

    /// Nearest-rank quantile: the lower edge of the bucket holding the
    /// `ceil(p/100 * count)`-th smallest sample. Returns 0.0 on an empty
    /// histogram. Exact for integer samples in `0 ..= 63`; otherwise the
    /// reported edge is within 3.125% below the true sample.
    pub fn quantile(&self, p: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((p / 100.0) * total as f64).ceil() as u64;
        let rank = rank.clamp(1, total);
        let mut seen = 0u64;
        for &(idx, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return bucket_lower_edge(idx);
            }
        }
        // Unreachable: seen == total >= rank by the clamp above.
        bucket_lower_edge(self.buckets[self.buckets.len() - 1].0)
    }

    /// Iterate occupied `(bucket index, count)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.buckets.iter().copied()
    }

    /// Canonical text form for the flat cell-cache format:
    /// `idx:count,idx:count,...` in index order, or `-` when empty.
    pub fn to_compact_string(&self) -> String {
        if self.buckets.is_empty() {
            return "-".to_string();
        }
        let mut out = String::with_capacity(self.buckets.len() * 8);
        for (k, &(idx, c)) in self.buckets.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&format!("{idx}:{c}"));
        }
        out
    }

    /// Parse the `to_compact_string` form. Rejects malformed pairs,
    /// zero counts, and out-of-order or duplicate indices, so a cache
    /// round-trip is exact or a clean miss.
    pub fn from_compact_str(s: &str) -> Option<Hist> {
        if s == "-" {
            return Some(Hist::new());
        }
        let mut buckets = Vec::new();
        let mut last: Option<u32> = None;
        for pair in s.split(',') {
            let (idx, count) = pair.split_once(':')?;
            let idx: u32 = idx.parse().ok()?;
            let count: u64 = count.parse().ok()?;
            if count == 0 || idx > OVERFLOW || last.is_some_and(|l| l >= idx) {
                return None;
            }
            last = Some(idx);
            buckets.push((idx, count));
        }
        Some(Hist { buckets, cursor: 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact nearest-rank quantile over a sorted slice — the reference
    /// the streaming histogram is checked against.
    fn exact_quantile(sorted: &[f64], p: f64) -> f64 {
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    #[test]
    fn integers_below_64_are_exact_edges() {
        for k in 0..64u32 {
            let idx = bucket_index(k as f64);
            assert_eq!(bucket_lower_edge(idx), k as f64, "integer {k}");
        }
    }

    #[test]
    fn edges_are_monotone_and_indexing_is_consistent() {
        let mut prev = -1.0f64;
        for idx in 0..=OVERFLOW {
            let edge = bucket_lower_edge(idx);
            assert!(edge >= prev, "edge order at {idx}");
            prev = edge;
            if (FIRST_NORMAL..OVERFLOW).contains(&idx) {
                // A bucket's lower edge maps back to the same bucket.
                assert_eq!(bucket_index(edge), idx, "round trip at {idx}");
            }
        }
    }

    #[test]
    fn special_values_bucket_deterministically() {
        assert_eq!(bucket_index(0.0), ZERO);
        assert_eq!(bucket_index(-3.5), ZERO);
        assert_eq!(bucket_index(1e-300), UNDERFLOW);
        assert_eq!(bucket_index(f64::MIN_POSITIVE / 2.0), UNDERFLOW);
        assert_eq!(bucket_index(1e300), OVERFLOW);
        assert_eq!(bucket_index(f64::INFINITY), OVERFLOW);
        assert_eq!(bucket_index(f64::NAN), OVERFLOW);
        assert_eq!(bucket_index(4_294_967_296.0), OVERFLOW);
        assert_eq!(bucket_index(4_294_967_295.0), OVERFLOW - 1);
    }

    #[test]
    fn quantiles_exact_for_small_integer_samples() {
        // The recovery-metrics shape from the sim: small event counts.
        let samples = [5.0, 1.0, 3.0, 2.0, 4.0];
        let mut h = Hist::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples;
        sorted.sort_by(f64::total_cmp);
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            assert_eq!(h.quantile(p), exact_quantile(&sorted, p), "p={p}");
        }
    }

    #[test]
    fn quantiles_within_relative_bound_for_floats() {
        let mut h = Hist::new();
        let mut samples = Vec::new();
        let mut x = 0.37f64;
        for _ in 0..500 {
            x = (x * 997.0 + 0.123).fract() * 40.0 + 1e-3;
            samples.push(x);
            h.record(x);
        }
        samples.sort_by(f64::total_cmp);
        for p in [1.0, 25.0, 50.0, 75.0, 99.0, 99.9] {
            let exact = exact_quantile(&samples, p);
            let est = h.quantile(p);
            assert!(est <= exact, "edge must not exceed sample (p={p})");
            assert!(
                est >= exact * (1.0 - 1.0 / 32.0) - 1e-12,
                "p={p}: {est} vs {exact}"
            );
        }
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(Hist::new().quantile(99.0), 0.0);
        assert_eq!(Hist::new().count(), 0);
    }

    #[test]
    fn merge_matches_single_stream() {
        let vals: Vec<f64> = (0..200)
            .map(|i| (i as f64 * 0.713).sin().abs() * 17.0)
            .collect();
        let mut whole = Hist::new();
        for &v in &vals {
            whole.record(v);
        }
        for split in [1, 3, 7, 50] {
            let mut acc = Hist::new();
            for chunk in vals.chunks(split) {
                let mut part = Hist::new();
                for &v in chunk {
                    part.record(v);
                }
                acc.merge(&part);
            }
            assert_eq!(acc, whole, "split={split}");
        }
    }

    #[test]
    fn compact_string_round_trips() {
        let mut h = Hist::new();
        for v in [0.0, 0.5, 1.0, 1.0, 3.25, 1e9, -2.0] {
            h.record(v);
        }
        let s = h.to_compact_string();
        assert_eq!(Hist::from_compact_str(&s), Some(h));
        assert_eq!(Hist::from_compact_str("-"), Some(Hist::new()));
        assert_eq!(Hist::new().to_compact_string(), "-");
        // Malformed inputs are clean misses, not panics.
        for bad in ["", "1", "1:0", "5:2,3:1", "2:1,2:1", "x:1", "9999999:1"] {
            assert_eq!(Hist::from_compact_str(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn dense_bucket_fold_equals_direct_records() {
        // Accumulate into a dense bucket-indexed scratch, fold it in,
        // and compare against direct recording — the hot-loop pattern
        // the sim uses for per-stage occupancy sampling.
        let vals = [0.0, 1.0, 1.0, 2.0, 7.0, 7.0, 7.0, 123.456];
        let mut dense = vec![0u64; NUM_BUCKETS];
        let mut direct = Hist::new();
        for &v in &vals {
            dense[bucket_index(v) as usize] += 1;
            direct.record(v);
        }
        let mut folded = Hist::new();
        for (idx, &n) in dense.iter().enumerate() {
            folded.record_bucket_n(idx as u32, n);
        }
        assert_eq!(folded, direct);
        assert_eq!(folded.to_compact_string(), direct.to_compact_string());
    }

    #[test]
    fn cursor_fast_path_respects_bucket_boundaries() {
        // Walk a value across an octave boundary one bucket-edge at a
        // time. Each exact lower edge must land in its own bucket: a
        // cursor fast path that matched on "close enough" instead of
        // exact index equality would fold neighbouring edges together.
        let edges: Vec<f64> = (FIRST_NORMAL..FIRST_NORMAL + 3 * SUBBUCKETS)
            .map(bucket_lower_edge)
            .collect();
        let mut h = Hist::new();
        for &e in &edges {
            h.record(e); // cursor points at the previous bucket: miss
            h.record(e); // same bucket: fast-path hit
        }
        assert_eq!(h.count(), 2 * edges.len() as u64);
        assert_eq!(h.occupied(), edges.len());
        for (idx, c) in h.iter() {
            assert_eq!(c, 2, "bucket {idx} must hold exactly its two edges");
        }
        // The value just below an edge belongs to the previous bucket
        // even when the cursor sits on the edge's own bucket.
        let edge = bucket_lower_edge(FIRST_NORMAL + SUBBUCKETS);
        let below = f64::from_bits(edge.to_bits() - 1);
        let mut h = Hist::new();
        h.record(edge);
        h.record(below);
        assert_eq!(
            h.iter().collect::<Vec<_>>(),
            vec![
                (FIRST_NORMAL + SUBBUCKETS - 1, 1),
                (FIRST_NORMAL + SUBBUCKETS, 1)
            ]
        );
    }

    #[test]
    fn cursor_survives_merge_and_insertion_shifts() {
        // merge() resets the cursor to 0; the next record must still
        // route through the correct bucket rather than trusting a
        // stale position into the rebuilt vector.
        let mut a = Hist::new();
        a.record(7.0);
        a.record(7.0); // cursor on 7.0's bucket
        let mut b = Hist::new();
        b.record(1.0);
        b.record(100.0);
        a.merge(&b);
        a.record(7.0); // cursor points at 1.0's bucket after the merge
        let mut expect = Hist::new();
        for v in [7.0, 7.0, 1.0, 100.0, 7.0] {
            expect.record(v);
        }
        assert_eq!(a, expect);

        // Inserting a bucket *before* the cursor shifts the vector; a
        // follow-up record of the old value must not double-count into
        // the newcomer's slot.
        let mut h = Hist::new();
        h.record(50.0); // cursor = 0 (only bucket)
        h.record(2.0); // inserts before it, cursor = 0 (new bucket)
        h.record(50.0); // cursor miss: must find 50.0's shifted slot
        let mut expect = Hist::new();
        for v in [2.0, 50.0, 50.0] {
            expect.record(v);
        }
        assert_eq!(h, expect);
        assert_eq!(h.to_compact_string(), expect.to_compact_string());
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut a = Hist::new();
        a.record_n(2.5, 4);
        let mut b = Hist::new();
        for _ in 0..4 {
            b.record(2.5);
        }
        assert_eq!(a, b);
        a.record_n(1.0, 0); // no-op
        assert_eq!(a, b);
    }
}
