//! Property-based tests for the streaming histogram: merge is an
//! associative, commutative, exact operation, so quantiles over a
//! partitioned sample never depend on how the sample was partitioned —
//! the property the thread-count-independent sweep aggregates rely on.

use ft_obs::{bucket_index, bucket_lower_edge, Hist};
use proptest::prelude::*;

/// Builds a histogram from a slice of samples.
fn hist_of(xs: &[f64]) -> Hist {
    let mut h = Hist::new();
    for &x in xs {
        h.record(x);
    }
    h
}

/// Nearest-rank quantile over the exact sorted sample.
fn exact_quantile(xs: &mut [f64], p: f64) -> f64 {
    xs.sort_by(f64::total_cmp);
    let rank = ((p / 100.0 * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
    xs[rank - 1]
}

/// Positive finite samples spanning many octaves of the histogram's
/// normal range (mantissa × 2^(e-12) for e in 0..24).
fn samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((1u64..=1_000_000, 0u32..24), 1..200).prop_map(|raws| {
        raws.into_iter()
            .map(|(m, e)| m as f64 * 2.0f64.powi(e as i32 - 12))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging is commutative: a∪b == b∪a, bucket-for-bucket.
    #[test]
    fn merge_commutes(a in samples(), b in samples()) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.to_compact_string(), ba.to_compact_string());
    }

    /// Merging is associative: (a∪b)∪c == a∪(b∪c).
    #[test]
    fn merge_associates(a in samples(), b in samples(), c in samples()) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
    }

    /// Any partition of a sample merges back to the histogram of the
    /// whole sample — recording and merging are byte-interchangeable.
    /// This is why a 4-thread sweep aggregates identically to a
    /// 1-thread sweep: per-seed histograms merge the same no matter
    /// which worker recorded them.
    #[test]
    fn partitioned_merge_equals_whole(xs in samples(), cut_seed in 0usize..1000) {
        let whole = hist_of(&xs);
        let cuts = 1 + cut_seed % 4; // 2..=5 chunks
        let chunk = xs.len().div_ceil(cuts + 1).max(1);
        let mut merged = Hist::new();
        for part in xs.chunks(chunk) {
            merged.merge(&hist_of(part));
        }
        prop_assert_eq!(&merged, &whole);
        prop_assert_eq!(merged.to_compact_string(), whole.to_compact_string());
    }

    /// The compact encoding round-trips exactly.
    #[test]
    fn compact_round_trip(xs in samples()) {
        let h = hist_of(&xs);
        let s = h.to_compact_string();
        let back = Hist::from_compact_str(&s).expect("own encoding parses");
        prop_assert_eq!(&back, &h);
        prop_assert_eq!(back.to_compact_string(), s);
    }

    /// Histogram quantiles are exact sorted-vector quantiles up to one
    /// subbucket of relative error: the reported value is a bucket
    /// lower edge at most 1/32 (one subbucket width) below the exact
    /// nearest-rank sample.
    #[test]
    fn quantile_tracks_exact(mut xs in samples(), p_pct in 1u32..=100) {
        let h = hist_of(&xs);
        let p = p_pct as f64;
        let got = h.quantile(p);
        let exact = exact_quantile(&mut xs, p);
        prop_assert!(got <= exact, "p{p}: {got} > exact {exact}");
        prop_assert!(
            got >= exact * (1.0 - 1.0 / 32.0) * (1.0 - 1e-12),
            "p{p}: {got} too far below exact {exact}"
        );
        // and the reported value is always a representable bucket edge
        prop_assert_eq!(bucket_lower_edge(bucket_index(got)), got);
    }

    /// Counts are conserved by record/merge.
    #[test]
    fn count_conserved(a in samples(), b in samples()) {
        let mut h = hist_of(&a);
        prop_assert_eq!(h.count(), a.len() as u64);
        h.merge(&hist_of(&b));
        prop_assert_eq!(h.count(), (a.len() + b.len()) as u64);
    }
}
