//! Injector determinism: every [`ft_sim::FaultInjector`] implementation
//! must keep the engine's byte-reproducibility contract — a fixed
//! `(scenario, seed)` pair yields the identical event stream (FNV
//! fingerprint), identical metrics, and identical sweep results
//! regardless of worker-thread count. The golden pins for one storm
//! seed and one targeted-adversary seed live in the workspace-level
//! `tests/determinism.rs`; these property tests cover the spec space
//! around them.

use ft_sim::{
    run_seed, run_sweep, Fabric, FaultSpec, HoldingTime, RetryPolicy, SimConfig, TrafficPattern,
};
use proptest::prelude::*;
use std::sync::OnceLock;

/// The fabrics injectors are exercised on (built once; all support
/// faults).
fn fabrics() -> &'static Vec<Fabric> {
    static FABRICS: OnceLock<Vec<Fabric>> = OnceLock::new();
    FABRICS.get_or_init(|| {
        vec![
            Fabric::clos_strict(2, 3),
            Fabric::benes(3),
            Fabric::multibutterfly(3, 2, 7),
        ]
    })
}

/// Decodes integer knobs into one spec per injector implementation
/// (`kind` selects the implementation; the rest vary its parameters).
fn spec_from(kind: u64, rate_k: u64, span_k: u64, extra: u64) -> FaultSpec {
    let rate = rate_k as f64 / 100.0; // 0.01 .. 0.20
    let window = span_k as f64 / 4.0; // 0.0 .. 3.75
    match kind % 4 {
        0 => FaultSpec::Iid,
        1 => FaultSpec::Storm {
            rate,
            window,
            stage: [None, Some(1), Some(2)][(extra % 3) as usize],
        },
        2 => FaultSpec::Burst {
            rate,
            size: (extra % 5 + 1) as usize,
            window,
        },
        _ => FaultSpec::Targeted { rate },
    }
}

fn retry_from(kind: u64, budget: u64, base_k: u64, depth_sel: u64) -> RetryPolicy {
    if kind.is_multiple_of(2) {
        RetryPolicy::OnRepair
    } else {
        RetryPolicy::Backoff {
            budget: (budget % 5) as u32,
            base: base_k as f64 / 10.0 + 0.1, // 0.1 .. 2.0
            shed_depth: [0usize, 2, 16][(depth_sel % 3) as usize],
        }
    }
}

fn cfg_for(faults: FaultSpec, retry: RetryPolicy) -> SimConfig {
    SimConfig {
        arrival_rate: 5.0,
        holding: HoldingTime::Exponential { mean: 1.0 },
        pattern: TrafficPattern::Uniform,
        // the i.i.d. process needs fault_rate; correlated injectors
        // carry their own rate and require fault_rate = 0
        fault_rate: if faults.is_iid() { 0.01 } else { 0.0 },
        mttr: 6.0,
        duration: 40.0,
        warmup: 5.0,
        buckets: 4,
        faults,
        retry,
        ..SimConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same seed ⇒ identical outcome (fingerprint, event count AND full
    /// metrics), for every injector × retry policy × fabric.
    #[test]
    fn every_injector_reproduces_its_stream(
        fkind in 0u64..4,
        rate_k in 1u64..20,
        span_k in 0u64..16,
        extra in 0u64..30,
        rkind in 0u64..2,
        budget in 0u64..10,
        base_k in 0u64..19,
        depth_sel in 0u64..3,
        seed in 0u64..10_000,
        fabric_idx in 0usize..3,
    ) {
        let faults = spec_from(fkind, rate_k, span_k, extra);
        let retry = retry_from(rkind, budget, base_k, depth_sel);
        let fabric = &fabrics()[fabric_idx];
        let cfg = cfg_for(faults, retry);
        let a = run_seed(fabric, &cfg, seed);
        let b = run_seed(fabric, &cfg, seed);
        prop_assert_eq!(&a, &b, "rerun diverged for {:?}", cfg.faults);
        // the identities the report leans on
        let m = &a.metrics;
        prop_assert_eq!(m.dropped, m.rerouted + m.abandoned);
        prop_assert!(m.shed <= m.abandoned);
        prop_assert!(m.degraded_time <= m.measured_time + 1e-9);
    }

    /// Sweep results must be independent of the worker-thread count for
    /// every injector: 1 vs 4 threads, same seeds, same bytes.
    #[test]
    fn sweeps_match_across_thread_counts(
        fkind in 0u64..4,
        rate_k in 1u64..20,
        span_k in 0u64..16,
        extra in 0u64..30,
        rkind in 0u64..2,
        budget in 0u64..10,
        base_k in 0u64..19,
        depth_sel in 0u64..3,
        seed_base in 0u64..1_000,
    ) {
        let faults = spec_from(fkind, rate_k, span_k, extra);
        let retry = retry_from(rkind, budget, base_k, depth_sel);
        let fabric = &fabrics()[0];
        let cfg = cfg_for(faults, retry);
        let seeds: Vec<u64> = (seed_base..seed_base + 4).collect();
        let serial = run_sweep(fabric, &cfg, &seeds, 1);
        let parallel = run_sweep(fabric, &cfg, &seeds, 4);
        prop_assert_eq!(serial, parallel, "thread count changed results for {:?}", cfg.faults);
    }
}

/// Storms and the adversary actually do what the scenario promises:
/// correlated kills show up as multi-fault episodes with nonzero
/// recovery metrics.
#[test]
fn storm_produces_episodes_and_recovery_metrics() {
    let fabric = Fabric::clos_strict(2, 3);
    let cfg = cfg_for(
        FaultSpec::Storm {
            rate: 0.1,
            window: 2.0,
            stage: Some(2),
        },
        RetryPolicy::Backoff {
            budget: 3,
            base: 0.25,
            shed_depth: 4,
        },
    );
    let out = run_seed(&fabric, &cfg, 5);
    let m = &out.metrics;
    assert!(m.storms > 0, "no storm episode fired: {m:?}");
    assert!(
        m.faults > m.storms,
        "a stage storm should strike several switches per episode: {m:?}"
    );
    assert!(m.degraded_time > 0.0);
    assert!(m.recovery_count > 0, "no recovery episode completed: {m:?}");
    assert!(m.time_to_recover_mean() > 0.0);
    assert!(m.dropped_per_storm() > 0.0);
}

#[test]
fn targeted_adversary_prefers_loaded_switches() {
    let fabric = Fabric::clos_strict(2, 3);
    let cfg = cfg_for(FaultSpec::Targeted { rate: 0.08 }, RetryPolicy::OnRepair);
    let out = run_seed(&fabric, &cfg, 11);
    let m = &out.metrics;
    assert!(m.faults > 0);
    // greedy max-damage: under steady traffic, most strikes cut a
    // live circuit — far above the uniform-random hit rate
    assert!(
        m.dropped as f64 >= 0.5 * m.faults as f64,
        "adversary barely hit circuits: dropped {} faults {}",
        m.dropped,
        m.faults
    );
}
