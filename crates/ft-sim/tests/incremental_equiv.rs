//! Incremental-vs-scratch equivalence under arbitrary interleavings.
//!
//! The PR-5 hot-loop overhaul replaced the per-event from-scratch
//! recomputation (full repair mask, whole-table session rescan, idle
//! and occupancy rebuilds) with O(1)/O(path) deltas: the
//! [`ft_failure::AliveTracker`] counts failed incident switches per
//! vertex, and the router's vertex → session index kills only the
//! crossing circuit. These tests pin the contract that made that legal:
//! after **any** interleaving of connect / disconnect / fault / repair,
//! on **every** fabric variant, the incremental state is bit-identical
//! to the scratch rebuild —
//!
//! * the tracker's alive mask equals `Fabric::alive_mask` of the
//!   cumulative instance;
//! * a router driven by `kill_vertex_into`/`revive_vertex` deltas is
//!   observably identical (aliveness, idleness, session paths, killed
//!   ids *and their order*, slot reuse) to one driven by the wholesale
//!   `set_alive_mask` recompute;
//! * the engine-style per-stage occupancy counters, maintained by
//!   increments along connect/kill/disconnect walks, equal a recount
//!   over the live paths.

use ft_failure::{FailureInstance, SwitchState};
use ft_graph::gen::rng;
use ft_graph::{Digraph, EdgeId};
use ft_networks::{CircuitRouter, SessionId};
use ft_sim::Fabric;
use proptest::prelude::*;
use rand::Rng;
use std::sync::OnceLock;

/// Every fabric variant, built once (𝒩 construction is expensive).
fn fabrics() -> &'static Vec<Fabric> {
    static FABRICS: OnceLock<Vec<Fabric>> = OnceLock::new();
    FABRICS.get_or_init(|| {
        vec![
            Fabric::crossbar(4),
            Fabric::clos_strict(2, 3),
            Fabric::clos_rearrangeable(2, 2),
            Fabric::benes(3),
            Fabric::multibutterfly(3, 2, 7),
            Fabric::ftn_reduced(1, 8, 4, 1.0),
        ]
    })
}

/// Recounts per-stage occupancy from the live paths (the scratch form
/// of the engine's incremental `busy_now`).
fn recount_busy(router: &CircuitRouter<'_>, live: &[SessionId], num_stages: usize) -> Vec<u64> {
    let net = router.network();
    let tab = net.stage_table();
    let mut busy = vec![0u64; num_stages];
    for &id in live {
        for &v in router.session_path(id).expect("live session has a path") {
            busy[tab[v.index()] as usize] += 1;
        }
    }
    busy
}

fn run_interleaving(fabric: &Fabric, seed: u64, steps: usize) {
    let net = fabric.net();
    let m = net.num_edges();
    let n = fabric.terminals();
    let num_stages = net.num_stages();
    let faults_ok = fabric.supports_faults();

    let mut inst = FailureInstance::perfect(m);
    let mut tracker = fabric.alive_tracker(&inst);
    // System under test: incremental deltas. Reference: wholesale mask.
    let mut inc = CircuitRouter::new(net);
    let mut refr = CircuitRouter::new(net);
    let mut busy_now = vec![0u64; num_stages];
    let tab = net.stage_table();

    let mut r = rng(seed);
    let mut live: Vec<SessionId> = Vec::new();
    let mut failed: Vec<EdgeId> = Vec::new();
    let mut delta = Vec::new();
    let mut killed_inc: Vec<SessionId> = Vec::new();

    for step in 0..steps {
        match r.random_range(0..100u32) {
            0..=44 => {
                // connect a random pair; both routers must agree
                let i = net.inputs()[r.random_range(0..n)];
                let o = net.outputs()[r.random_range(0..n)];
                let a = inc.connect(i, o);
                let b = refr.connect(i, o);
                prop_assert_eq!(&a, &b, "routing decisions diverged");
                if let Ok(id) = a {
                    for &v in inc.session_path(id).unwrap() {
                        busy_now[tab[v.index()] as usize] += 1;
                    }
                    live.push(id);
                }
            }
            45..=69 => {
                // disconnect a random live session
                if live.is_empty() {
                    continue;
                }
                let id = live.swap_remove(r.random_range(0..live.len()));
                let busy = &mut busy_now;
                prop_assert!(inc.disconnect_visit(id, |v| busy[tab[v.index()] as usize] -= 1));
                prop_assert!(refr.disconnect(id));
            }
            70..=84 => {
                // fail a random healthy switch
                if !faults_ok || failed.len() == m {
                    continue;
                }
                let e = loop {
                    let e = EdgeId::from(r.random_range(0..m));
                    if inst.is_normal(e) {
                        break e;
                    }
                };
                let state = if r.random_bool(0.5) {
                    SwitchState::Open
                } else {
                    SwitchState::Closed
                };
                inst.set_state(e, state);
                failed.push(e);
                let (t, h) = net.graph().endpoints(e);
                delta.clear();
                tracker.fail_edge(t, h, &mut delta);
                // incremental kill: collect crossing circuits in slot
                // order (the engine's discipline), then withdraw
                killed_inc.clear();
                for &v in &delta {
                    if let Some(id) = inc.session_through(v) {
                        if !killed_inc.contains(&id) {
                            killed_inc.push(id);
                        }
                    }
                }
                killed_inc.sort_unstable_by_key(|id| id.0);
                for &id in &killed_inc {
                    let busy = &mut busy_now;
                    prop_assert!(inc.disconnect_visit(id, |v| busy[tab[v.index()] as usize] -= 1));
                }
                for &v in &delta {
                    inc.kill_vertex_into(v, &mut killed_inc);
                }
                // reference: wholesale recompute
                let killed_ref = refr.set_alive_mask(&fabric.alive_mask(&inst));
                prop_assert_eq!(&killed_inc, &killed_ref, "killed ids or order diverged");
                live.retain(|id| !killed_inc.contains(id));
            }
            _ => {
                // repair a random failed switch
                if failed.is_empty() {
                    continue;
                }
                let e = failed.swap_remove(r.random_range(0..failed.len()));
                inst.set_state(e, SwitchState::Normal);
                let (t, h) = net.graph().endpoints(e);
                delta.clear();
                tracker.repair_edge(t, h, &mut delta);
                for &v in &delta {
                    inc.revive_vertex(v);
                }
                let killed_ref = refr.set_alive_mask(&fabric.alive_mask(&inst));
                prop_assert!(killed_ref.is_empty(), "repair can only grow the alive set");
            }
        }

        // ---- full state comparison, every step ----
        let scratch_alive = fabric.alive_mask(&inst);
        prop_assert_eq!(
            tracker.alive(),
            &scratch_alive[..],
            "tracker mask diverged at step {}",
            step
        );
        for v in net.graph().vertices() {
            prop_assert_eq!(inc.is_alive(v), refr.is_alive(v));
            prop_assert_eq!(inc.is_idle(v), refr.is_idle(v));
            prop_assert_eq!(inc.is_alive(v), scratch_alive[v.index()]);
            prop_assert_eq!(inc.session_through(v), refr.session_through(v));
        }
        prop_assert_eq!(inc.active_sessions(), refr.active_sessions());
        prop_assert_eq!(inc.session_slots(), refr.session_slots());
        for &id in &live {
            prop_assert_eq!(inc.session_path(id), refr.session_path(id));
        }
        prop_assert_eq!(
            &busy_now,
            &recount_busy(&inc, &live, num_stages),
            "incremental per-stage occupancy diverged at step {}",
            step
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary interleavings on every fabric variant: incremental
    /// alive / idle / occupancy / session state must equal the
    /// from-scratch rebuild at every step.
    #[test]
    fn incremental_state_equals_scratch_rebuild(
        seed in 0u64..100_000,
        steps in 40usize..120,
    ) {
        for fabric in fabrics() {
            run_interleaving(fabric, seed, steps);
        }
    }
}
