//! Validation of the simulation engine against closed-form and static
//! Monte Carlo references — the acceptance criteria of the ft-sim
//! subsystem:
//!
//! 1. fault-free low-load sanity: a strictly nonblocking fabric never
//!    reports path blocking, and offered-load sweeps move busy
//!    rejections monotonically;
//! 2. Erlang-B: a single-circuit fabric under Poisson arrivals
//!    reproduces `B(a, 1) = a / (1 + a)` (and, by Erlang insensitivity,
//!    does so for heavy-tailed holding times too);
//! 3. temporal/static cross-check: with per-switch failure rate λ and
//!    repair rate 1/mttr, the stationary per-switch unavailability is
//!    `u = λ / (λ + 1/mttr)`; by PASTA, arrival-observed blocking in
//!    the sim's steady state must match a static Monte Carlo estimate
//!    over `FailureInstance`s sampled at ε_total = u under the same
//!    repair discipline.

use ft_failure::montecarlo::estimate_probability;
use ft_failure::{FailureInstance, FailureModel};
use ft_graph::traversal::{bfs, Direction};
use ft_sim::{run_seed, Fabric, HoldingTime, SimConfig, TrafficPattern};
use rand::Rng;

fn cfg(arrival_rate: f64, duration: f64) -> SimConfig {
    SimConfig {
        arrival_rate,
        holding: HoldingTime::Exponential { mean: 1.0 },
        pattern: TrafficPattern::Uniform,
        fault_rate: 0.0,
        fault_open_share: 0.5,
        mttr: 0.0,
        duration,
        warmup: 0.0,
        buckets: 1,
        ..SimConfig::default()
    }
}

#[test]
fn strictly_nonblocking_fabric_has_zero_blocking_and_monotone_load_sweep() {
    let fabric = Fabric::clos_strict(2, 3); // 6 terminals, m = 3 = 2n−1
    let mut busy = Vec::new();
    for rate in [0.2, 2.0, 8.0, 32.0] {
        let out = run_seed(&fabric, &cfg(rate, 1000.0), 42);
        assert_eq!(
            out.metrics.blocked, 0,
            "strict Clos blocked at rate {rate}: {:?}",
            out.metrics
        );
        assert!(out.metrics.offered > 100);
        busy.push(out.metrics.busy_rejection());
    }
    // offered-load sweep: busy rejection grows with the load
    for w in busy.windows(2) {
        assert!(w[0] <= w[1], "busy rejection not monotone: {busy:?}");
    }
    assert!(busy[0] < 0.1, "low load should barely collide: {busy:?}");
    assert!(busy[3] > 0.5, "high load should saturate: {busy:?}");
}

#[test]
fn erlang_b_reference_on_a_single_circuit() {
    // crossbar 1: one input, one output, one switch — an M/M/1/1 loss
    // system. Offered load a = λ·h = 0.5 erlangs ⇒ B = 1/3.
    let fabric = Fabric::crossbar(1);
    let mut c = cfg(0.5, 40_000.0);
    c.warmup = 100.0;
    let out = run_seed(&fabric, &c, 7);
    let sim_b = out.metrics.busy_rejection();
    let want = ft_sim::erlang_b(0.5, 1);
    assert!(
        (sim_b - want).abs() < 0.01,
        "sim {sim_b} vs Erlang-B {want} ({} arrivals)",
        out.metrics.offered
    );
    // carried load = a(1 − B)
    let carried = out.metrics.carried_erlangs();
    assert!(
        (carried - 0.5 * (1.0 - want)).abs() < 0.01,
        "carried {carried}"
    );

    // Erlang-B insensitivity: same blocking under heavy-tailed holding
    c.holding = HoldingTime::Pareto {
        shape: 2.5,
        mean: 1.0,
    };
    let heavy = run_seed(&fabric, &c, 7);
    assert!(
        (heavy.metrics.busy_rejection() - want).abs() < 0.015,
        "pareto holding broke insensitivity: {} vs {want}",
        heavy.metrics.busy_rejection()
    );
}

/// The temporal fault process against the static snapshot machinery.
///
/// Sim side: strict Clos under per-switch failure rate λ with repair
/// rate μ = 1/mttr, long run, sparse traffic (so terminal collisions
/// are negligible); arrival-observed blocking estimates the stationary
/// probability that a uniform random pair has no alive path (PASTA).
///
/// Static side: `estimate_probability` over fresh `FailureInstance`s at
/// ε_total = λ/(λ + μ) (the stationary unavailability of the two-state
/// Markov switch), alive mask by the same §4 discipline, BFS for the
/// same pair-blocking event.
#[test]
fn temporal_fault_blocking_matches_static_snapshot_estimate() {
    let fabric = Fabric::clos_strict(2, 3);
    let net = fabric.net();
    let n = fabric.terminals();
    let lambda = 0.02; // per-switch failures per time unit
    let mttr = 5.0;
    let u = lambda / (lambda + 1.0 / mttr); // = 1/11 ≈ 0.0909

    // --- temporal estimate ---
    let sim_cfg = SimConfig {
        arrival_rate: 1.0,
        holding: HoldingTime::Exponential { mean: 0.02 },
        pattern: TrafficPattern::Uniform,
        fault_rate: lambda,
        fault_open_share: 0.5,
        mttr,
        duration: 4000.0,
        warmup: 100.0,
        buckets: 1,
        ..SimConfig::default()
    };
    let out = run_seed(&fabric, &sim_cfg, 2024);
    let m = &out.metrics;
    assert!(m.faults > 1000, "fault process too quiet: {}", m.faults);
    assert!(m.repairs > 1000);
    assert!(m.dropped > 0, "sessions should be killed by faults");
    assert_eq!(m.dropped, m.rerouted + m.abandoned);
    // sparse traffic: busy collisions must not contaminate the estimate
    assert!(m.busy_rejection() < 0.01, "{:?}", m.busy_rejection());
    let sim_p = m.blocking_probability();

    // --- static estimate at the stationary unavailability ---
    let model = FailureModel::new(u / 2.0, u / 2.0);
    let est = estimate_probability(40_000, 99, |rng| {
        let inst = FailureInstance::sample(&model, rng, net.size());
        let alive = fabric.alive_mask(&inst);
        let i = rng.random_range(0..n);
        let o = rng.random_range(0..n);
        let b = bfs(
            net,
            &[net.inputs()[i]],
            Direction::Forward,
            |_| true,
            |v| alive[v.index()],
        );
        !b.reached(net.outputs()[o])
    });
    let static_p = est.p();

    // Both estimators are deterministic per seed; the sim's effective
    // sample count (~duration/mttr mask regenerations) dominates the
    // tolerance.
    assert!(
        (sim_p - static_p).abs() < 0.03,
        "temporal {sim_p} vs static {static_p} (u = {u})"
    );
    // and both see a clearly nonzero blocking signal at this ε
    assert!(static_p > 0.05, "static {static_p} too small to compare");
    assert!(sim_p > 0.05, "sim {sim_p} too small to compare");
}

/// Permanent faults (no repair): the expected number of failed switches
/// after time T is `m·(1 − e^{−λT})`, the same marginal a static
/// snapshot at ε_total = 1 − e^{−λT} samples.
#[test]
fn permanent_fault_count_matches_static_marginal() {
    let fabric = Fabric::clos_strict(2, 3);
    let m = fabric.net().size() as f64;
    let lambda = 0.001f64;
    let t_end = 200.0f64;
    let expect = m * (1.0 - (-lambda * t_end).exp());
    let mut counts = Vec::new();
    for seed in 0..20 {
        let mut c = cfg(0.5, t_end);
        c.fault_rate = lambda;
        let out = run_seed(&fabric, &c, seed);
        assert_eq!(out.metrics.repairs, 0);
        counts.push(out.metrics.faults as f64);
    }
    let mean = counts.iter().sum::<f64>() / counts.len() as f64;
    // std of one run ≈ sqrt(expect); 20 seeds tighten it ~4.5x
    let tol = 3.0 * (expect / 20.0).sqrt();
    assert!(
        (mean - expect).abs() < tol,
        "mean faults {mean} vs expected {expect} ± {tol}"
    );
}
