//! Transpose equivalence for the bit-sliced Monte Carlo path.
//!
//! A sliced 64-lane block is just 64 scalar trials stored column-wise.
//! These tests pin that claim end-to-end for every fabric family and
//! every ε regime the sampler distinguishes: unpack each lane of a
//! sliced block into a packed [`FailureInstance`], run the scalar §4
//! repair and scalar BFS on it, and demand the verdicts be
//! *bit-identical* to the lane-parallel sweep — alive masks, per-output
//! reachability, and the pair-blocking estimates built on top.

use ft_failure::sliced::LANES;
use ft_failure::{block_seed, FailureInstance, FailureModel, SlicedFailureMask};
use ft_graph::sliced::{sliced_reach_into, SlicedWorkspace};
use ft_graph::traversal::{bfs_into, Direction};
use ft_graph::{Digraph, TraversalWorkspace};
use ft_sim::{pair_blocking_estimate, pair_blocking_estimate_scalar, Fabric};

fn families() -> Vec<Fabric> {
    vec![
        Fabric::clos_strict(2, 3),
        Fabric::clos_rearrangeable(2, 2),
        Fabric::benes(2),
        Fabric::multibutterfly(2, 2, 7),
        Fabric::ftn_reduced(1, 8, 4, 1.0),
    ]
}

/// ε values straddling the sampler's regimes: deep sparse (geometric
/// gaps, lane-major scalar replication), just under the dense cutoff
/// for the symmetric model (2ε = 0.1), and clearly dense (bit-sliced
/// comparator).
const EPSILONS: [f64; 3] = [1e-6, 0.05, 0.2];

#[test]
fn every_lane_matches_the_scalar_pipeline() {
    let mut sliced = SlicedFailureMask::new();
    let mut sws = SlicedWorkspace::new();
    let mut ws = TraversalWorkspace::new();
    for fabric in families() {
        let net = fabric.net();
        let csr = net.csr();
        let m = net.num_edges();
        for (i, &eps) in EPSILONS.iter().enumerate() {
            let model = FailureModel::symmetric(eps);
            let seed = block_seed(17, i as u64);
            let mut rng = ft_graph::gen::rng(seed);
            model.sample_sliced_into(&mut rng, m, &mut sliced);

            // lane-parallel side: §4 repair words + one sweep from input 0
            let mut alive_words = Vec::new();
            fabric.alive_words_into(&sliced, &mut alive_words);
            sliced_reach_into(
                csr,
                &[(net.inputs()[0], !0)],
                Direction::Forward,
                |_| !0,
                |v| alive_words[v.index()],
                &mut sws,
            );

            // scalar side, lane by lane
            let mut lane_inst = FailureInstance::perfect(m);
            let mut alive = Vec::new();
            for lane in 0..LANES {
                sliced.extract_lane_into(lane, lane_inst.mask_mut());
                // switch states must be the lane's column of the planes
                for s in 0..m {
                    assert_eq!(
                        lane_inst.state(ft_graph::EdgeId::from(s)),
                        sliced.lane_state(s, lane),
                        "{} eps={eps} lane {lane} switch {s}",
                        fabric.label()
                    );
                }
                fabric.alive_mask_into(&lane_inst, &mut alive);
                for (v, &w) in alive_words.iter().enumerate() {
                    assert_eq!(
                        (w >> lane) & 1 != 0,
                        alive[v],
                        "{} eps={eps} lane {lane} vertex {v}: alive word disagrees",
                        fabric.label()
                    );
                }
                bfs_into(
                    csr,
                    &[net.inputs()[0]],
                    Direction::Forward,
                    |_| true,
                    |v| alive[v.index()],
                    &mut ws,
                );
                for &out in net.outputs() {
                    assert_eq!(
                        sws.reached(out, lane),
                        ws.reached(out),
                        "{} eps={eps} lane {lane} output {out:?}: verdict disagrees",
                        fabric.label()
                    );
                }
            }
        }
    }
}

/// In the sparse regime lane *i* is bit-identical to the *i*-th
/// consecutive scalar sample, so the full pair-blocking estimators must
/// agree *exactly* — per fabric family, not just on average.
#[test]
fn pair_blocking_estimators_agree_exactly_when_sparse() {
    let model = FailureModel::symmetric(0.01);
    for fabric in families() {
        let sliced = pair_blocking_estimate(&fabric, &model, 330, 23);
        let scalar = pair_blocking_estimate_scalar(&fabric, &model, 330, 23);
        assert_eq!(sliced, scalar, "{}", fabric.label());
    }
}

/// In the dense regime the sliced sampler has its own pinned stream, so
/// equality is distributional: both estimators must land within Monte
/// Carlo noise of each other at matched trial budgets.
#[test]
fn pair_blocking_estimators_agree_statistically_when_dense() {
    let model = FailureModel::symmetric(0.2);
    let fabric = Fabric::clos_strict(2, 3);
    let sliced = pair_blocking_estimate(&fabric, &model, 64 * 400, 23);
    let scalar = pair_blocking_estimate_scalar(&fabric, &model, 64 * 400, 23);
    let diff = (sliced.p() - scalar.p()).abs();
    assert!(
        diff < 0.02,
        "sliced {} vs scalar {} differ by {diff}",
        sliced.p(),
        scalar.p()
    );
}

/// The dense comparator's open/closed split must match the model's
/// conditional shares, lane-aggregated over a block.
#[test]
fn dense_block_respects_open_closed_shares() {
    let model = FailureModel::new(0.15, 0.05);
    let m = 4096;
    let mut sliced = SlicedFailureMask::new();
    let mut rng = ft_graph::gen::rng(91);
    model.sample_sliced_into(&mut rng, m, &mut sliced);
    let (mut open, mut closed) = (0u64, 0u64);
    for s in 0..m {
        open += sliced.open_word(s).count_ones() as u64;
        closed += sliced.closed_word(s).count_ones() as u64;
    }
    let trials = (m * LANES) as f64;
    let p_open = open as f64 / trials;
    let p_closed = closed as f64 / trials;
    assert!((p_open - 0.15).abs() < 0.005, "open share {p_open}");
    assert!((p_closed - 0.05).abs() < 0.005, "closed share {p_closed}");
    // and no switch is both open and closed in the same lane
    for s in 0..m {
        assert_eq!(sliced.open_word(s) & sliced.closed_word(s), 0);
    }
}
