//! # ft-sim — discrete-event traffic & fault-lifetime simulation
//!
//! The paper's headline claim is *operational*: an (ε, δ)-nonblocking
//! network keeps serving circuits **while switches fail and repairs
//! run**. The rest of the workspace evaluates static failure snapshots;
//! this crate adds the time axis. A deterministic discrete-event engine
//! drives a [`ft_networks::CircuitRouter`] through virtual time:
//!
//! * [`events`] — the event queue: arrivals, hangups, switch faults,
//!   repair completions, burst toggles, totally ordered by
//!   `(time, seq)`;
//! * [`workload`] — Poisson arrivals (optionally burst-modulated) with
//!   exponential or heavy-tailed holding times under uniform,
//!   permutation, hotspot and bursty traffic patterns;
//! * [`fabric`] — the switch fabrics under test and the §4 repair
//!   discipline that turns a cumulative failure instance into a router
//!   alive-mask;
//! * [`inject`] — pluggable fault processes behind the
//!   [`inject::FaultInjector`] trait: the i.i.d. exponential baseline,
//!   stage-group storms, spatially correlated bursts, and a greedy
//!   targeted adversary, plus the [`inject::RetryPolicy`] degradation
//!   ladder (retry budgets, exponential backoff, admission shedding);
//! * [`engine`] — the event loop: faults kill the circuits crossing
//!   discarded vertices and trigger immediate re-routes; repairs retry
//!   the calls still waiting;
//! * [`metrics`] — blocking probability, drops, reroute latency, path
//!   lengths, per-stage utilisation, time buckets, and the Erlang-B
//!   reference for low-load sanity checks;
//! * [`sweep`] — the multi-seed parallel driver (one workspace per
//!   worker, results independent of thread count);
//! * [`scenario`] / [`report`] — the plain-text spec the `ftsim` CLI
//!   parses and the byte-reproducible JSON report it emits;
//! * [`staticcheck`] — the PASTA cross-check: a snapshot Monte Carlo
//!   estimate at the stationary unavailability that temporal blocking
//!   must reproduce (and that `ftexp` studies report per cell);
//! * [`stream`] — deterministic workload-stream export (`ftsim
//!   --export-stream`): the connect/disconnect/fault/repair schedule
//!   of one seed rendered as replayable NDJSON for the `ftserve`
//!   replay client.
//!
//! **Determinism guarantee:** all randomness flows through one seeded
//! RNG in event order, event ties break by insertion sequence, and the
//! JSON writer is byte-stable — a fixed `(scenario, seed)` pair
//! reproduces the identical event stream (pinned by an FNV fingerprint)
//! and the identical report, across runs and thread counts.

#![warn(missing_docs)]

pub mod engine;
pub mod events;
pub mod fabric;
pub mod inject;
pub mod metrics;
pub mod report;
pub mod scenario;
pub mod staticcheck;
pub mod stream;
pub mod sweep;
pub mod workload;

pub use engine::{run_seed, run_seed_obs, run_seed_with, SeedOutcome, SimConfig, SimWorkspace};
pub use events::{Event, EventKind, EventQueue};
pub use fabric::Fabric;
pub use inject::{FaultInjector, FaultSpec, InjectCtx, RerouteMode, RetryPolicy, Strike};
pub use metrics::{erlang_b, Bucket, Metrics};
pub use report::Report;
pub use scenario::{FabricSpec, Scenario, ScenarioBuilder, SCENARIO_KEYS};
pub use staticcheck::{pair_blocking_estimate, pair_blocking_estimate_scalar};
pub use stream::{export_stream, StreamEvent, StreamKind};
pub use sweep::{run_sweep, run_sweep_traced};
pub use workload::{HoldingTime, TrafficPattern};

/// Parses a scenario, runs its sweep and assembles the report — the
/// CLI's whole pipeline, reusable from tests and examples.
pub fn run_scenario_text(text: &str) -> Result<Report, String> {
    let scenario = Scenario::parse(text)?;
    let fabric = scenario.fabric.build();
    let outcomes = run_sweep(
        &fabric,
        &scenario.config,
        &scenario.seed_list(),
        scenario.threads,
    );
    Ok(Report::new(scenario, &fabric, outcomes))
}
