//! Static Monte Carlo cross-checks for the temporal engine.
//!
//! The bridge between this crate's discrete-event results and the
//! snapshot machinery of `ft-failure`: with per-switch failure rate λ
//! and repair rate `1/mttr`, each switch is a two-state Markov chain
//! whose stationary unavailability is `u = λ·mttr / (1 + λ·mttr)`
//! ([`FailureModel::stationary`]), and by PASTA a Poisson arrival in
//! steady state observes an i.i.d. failure snapshot at that `u`. A
//! sparse-traffic simulation's arrival-observed blocking must therefore
//! match [`pair_blocking_estimate`] — a pure snapshot estimator with no
//! time axis — within Monte Carlo noise. `sim_validation.rs` pins this
//! for one scenario; the `ftexp` study runner emits the estimate as a
//! per-cell cross-validation column.

use crate::fabric::Fabric;
use ft_failure::{Estimate, FailureInstance, FailureModel};
use ft_graph::traversal::{bfs_into, Direction};
use ft_graph::{Digraph, TraversalWorkspace};
use rand::Rng;

/// Estimates the probability that a uniformly random terminal pair of
/// `fabric` has **no alive path** under an i.i.d. failure snapshot from
/// `model` repaired by the §4 vertex-discard discipline.
///
/// One frozen CSR, one packed instance, one traversal workspace and
/// one alive-mask buffer are reused across all `trials` (the
/// `mc_failure_probs` discipline; the 𝒩 repair path still builds its
/// `Survivor` per trial); results are deterministic per
/// `(fabric, model, trials, seed)`.
pub fn pair_blocking_estimate(
    fabric: &Fabric,
    model: &FailureModel,
    trials: u64,
    seed: u64,
) -> Estimate {
    let net = fabric.net();
    let csr = net.csr();
    let n = fabric.terminals();
    let m = net.num_edges();
    let mut rng = ft_graph::gen::rng(seed);
    let mut inst = FailureInstance::perfect(m);
    let mut ws = TraversalWorkspace::new();
    let mut alive = Vec::new();
    let mut successes = 0u64;
    for _ in 0..trials {
        inst.resample(model, &mut rng, m);
        fabric.alive_mask_into(&inst, &mut alive);
        let i = rng.random_range(0..n);
        let o = rng.random_range(0..n);
        bfs_into(
            csr,
            &[net.inputs()[i]],
            Direction::Forward,
            |_| true,
            |v| alive[v.index()],
            &mut ws,
        );
        if !ws.reached(net.outputs()[o]) {
            successes += 1;
        }
    }
    Estimate { successes, trials }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_model_never_blocks() {
        let fabric = Fabric::clos_strict(2, 3);
        let est = pair_blocking_estimate(&fabric, &FailureModel::perfect(), 200, 1);
        assert_eq!(est.successes, 0);
        assert_eq!(est.trials, 200);
    }

    #[test]
    fn deterministic_per_seed_and_monotone_in_eps() {
        let fabric = Fabric::clos_strict(2, 3);
        let lo = pair_blocking_estimate(&fabric, &FailureModel::symmetric(0.02), 4000, 9);
        let again = pair_blocking_estimate(&fabric, &FailureModel::symmetric(0.02), 4000, 9);
        assert_eq!(lo, again);
        let hi = pair_blocking_estimate(&fabric, &FailureModel::symmetric(0.10), 4000, 9);
        assert!(
            hi.p() > lo.p(),
            "blocking should grow with eps: {} vs {}",
            hi.p(),
            lo.p()
        );
    }

    #[test]
    fn matches_the_stationary_model_hookup() {
        // The composition the study runner uses: λ, mttr → stationary
        // model → snapshot estimate. Smoke-level sanity only (the
        // quantitative sim-vs-static comparison lives in
        // tests/sim_validation.rs).
        let fabric = Fabric::clos_strict(2, 3);
        let model = FailureModel::stationary(0.02, 5.0, 0.5);
        let est = pair_blocking_estimate(&fabric, &model, 8000, 42);
        assert!(est.p() > 0.02, "u ≈ 0.09 must yield visible blocking");
        assert!(est.p() < 0.5);
    }
}
