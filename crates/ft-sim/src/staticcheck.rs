//! Static Monte Carlo cross-checks for the temporal engine.
//!
//! The bridge between this crate's discrete-event results and the
//! snapshot machinery of `ft-failure`: with per-switch failure rate λ
//! and repair rate `1/mttr`, each switch is a two-state Markov chain
//! whose stationary unavailability is `u = λ·mttr / (1 + λ·mttr)`
//! ([`FailureModel::stationary`]), and by PASTA a Poisson arrival in
//! steady state observes an i.i.d. failure snapshot at that `u`. A
//! sparse-traffic simulation's arrival-observed blocking must therefore
//! match [`pair_blocking_estimate`] — a pure snapshot estimator with no
//! time axis — within Monte Carlo noise. `sim_validation.rs` pins this
//! for one scenario; the `ftexp` study runner emits the estimate as a
//! per-cell cross-validation column.

use crate::fabric::Fabric;
use ft_failure::sliced::LANES;
use ft_failure::{block_seed, Estimate, FailureInstance, FailureModel, SlicedFailureMask};
use ft_graph::sliced::{sliced_reach_into, SlicedWorkspace};
use ft_graph::traversal::{bfs_into, Direction};
use ft_graph::{Digraph, TraversalWorkspace, VertexId};
use rand::Rng;

/// Salt separating a block's terminal-pair draws from its failure
/// sampling, so the sliced driver (which draws all 64 pairs after one
/// bulk sample) and the scalar reference (which alternates sample and
/// pair draws) consume identical streams.
const PAIR_STREAM_SALT: u64 = 0x517C_C1B7_2722_0A95;

/// Estimates the probability that a uniformly random terminal pair of
/// `fabric` has **no alive path** under an i.i.d. failure snapshot from
/// `model` repaired by the §4 vertex-discard discipline.
///
/// Bit-sliced: trials run in [`LANES`]-sized blocks under the
/// [`block_seed`] discipline. Each block samples one
/// [`SlicedFailureMask`], computes the per-vertex alive lane words
/// ([`Fabric::alive_words_into`] — lane-parallel for generic fabrics,
/// per-lane `Survivor` fallback for 𝒩), draws the 64 terminal pairs
/// from a salted side stream, and answers all 64 blocking verdicts with
/// **one** lane-parallel sweep whose sources carry per-lane bits (lanes
/// starting at the same input share a source word). The
/// `trials % LANES` tail runs scalar. Deterministic per
/// `(fabric, model, trials, seed)`; [`pair_blocking_estimate_scalar`]
/// is the pinned reference, exactly equal in the sparse sampling
/// regime.
pub fn pair_blocking_estimate(
    fabric: &Fabric,
    model: &FailureModel,
    trials: u64,
    seed: u64,
) -> Estimate {
    let net = fabric.net();
    let csr = net.csr();
    let n = fabric.terminals();
    let m = net.num_edges();
    let blocks = trials / LANES as u64;
    let rem = trials % LANES as u64;
    let mut sliced = SlicedFailureMask::new();
    let mut sws = SlicedWorkspace::new();
    let mut alive = Vec::new();
    let mut sources: Vec<(VertexId, u64)> = Vec::with_capacity(LANES);
    let mut outs = [0usize; LANES];
    let mut successes = 0u64;
    for b in 0..blocks {
        let bs = block_seed(seed, b);
        let mut rng = ft_graph::gen::rng(bs);
        model.sample_sliced_into(&mut rng, m, &mut sliced);
        fabric.alive_words_into(&sliced, &mut alive);
        let mut pair_rng = ft_graph::gen::rng(bs ^ PAIR_STREAM_SALT);
        sources.clear();
        for (lane, out) in outs.iter_mut().enumerate() {
            let i = pair_rng.random_range(0..n);
            *out = pair_rng.random_range(0..n);
            let src = net.inputs()[i];
            match sources.iter_mut().find(|(v, _)| *v == src) {
                Some((_, lanes)) => *lanes |= 1 << lane,
                None => sources.push((src, 1 << lane)),
            }
        }
        sliced_reach_into(
            csr,
            &sources,
            Direction::Forward,
            |_| !0,
            |v| alive[v.index()],
            &mut sws,
        );
        for (lane, &o) in outs.iter().enumerate() {
            if (sws.reached_lanes(net.outputs()[o]) >> lane) & 1 == 0 {
                successes += 1;
            }
        }
    }
    if rem > 0 {
        successes += pair_blocking_block_scalar(fabric, model, rem, blocks, seed);
    }
    Estimate { successes, trials }
}

/// Scalar reference for [`pair_blocking_estimate`]: identical block
/// partition, seeding and pair-draw stream, but every trial is sampled
/// and evaluated individually (packed instance, `alive_mask_into`,
/// scalar BFS). Exactly equal to the sliced estimate in the sparse
/// sampling regime — the transpose-equivalence tests pin this per
/// fabric family.
pub fn pair_blocking_estimate_scalar(
    fabric: &Fabric,
    model: &FailureModel,
    trials: u64,
    seed: u64,
) -> Estimate {
    let blocks = trials / LANES as u64;
    let rem = trials % LANES as u64;
    let mut successes = 0u64;
    for b in 0..blocks {
        successes += pair_blocking_block_scalar(fabric, model, LANES as u64, b, seed);
    }
    if rem > 0 {
        successes += pair_blocking_block_scalar(fabric, model, rem, blocks, seed);
    }
    Estimate { successes, trials }
}

/// Runs the first `count` trials of block `block` scalar-side — the
/// shared remainder path of both drivers.
fn pair_blocking_block_scalar(
    fabric: &Fabric,
    model: &FailureModel,
    count: u64,
    block: u64,
    seed: u64,
) -> u64 {
    let net = fabric.net();
    let csr = net.csr();
    let n = fabric.terminals();
    let m = net.num_edges();
    let bs = block_seed(seed, block);
    let mut rng = ft_graph::gen::rng(bs);
    let mut pair_rng = ft_graph::gen::rng(bs ^ PAIR_STREAM_SALT);
    let mut inst = FailureInstance::perfect(m);
    let mut ws = TraversalWorkspace::new();
    let mut alive = Vec::new();
    let mut successes = 0u64;
    for _ in 0..count {
        inst.resample(model, &mut rng, m);
        fabric.alive_mask_into(&inst, &mut alive);
        let i = pair_rng.random_range(0..n);
        let o = pair_rng.random_range(0..n);
        bfs_into(
            csr,
            &[net.inputs()[i]],
            Direction::Forward,
            |_| true,
            |v| alive[v.index()],
            &mut ws,
        );
        if !ws.reached(net.outputs()[o]) {
            successes += 1;
        }
    }
    successes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_model_never_blocks() {
        let fabric = Fabric::clos_strict(2, 3);
        let est = pair_blocking_estimate(&fabric, &FailureModel::perfect(), 200, 1);
        assert_eq!(est.successes, 0);
        assert_eq!(est.trials, 200);
    }

    #[test]
    fn deterministic_per_seed_and_monotone_in_eps() {
        let fabric = Fabric::clos_strict(2, 3);
        let lo = pair_blocking_estimate(&fabric, &FailureModel::symmetric(0.02), 4000, 9);
        let again = pair_blocking_estimate(&fabric, &FailureModel::symmetric(0.02), 4000, 9);
        assert_eq!(lo, again);
        let hi = pair_blocking_estimate(&fabric, &FailureModel::symmetric(0.10), 4000, 9);
        assert!(
            hi.p() > lo.p(),
            "blocking should grow with eps: {} vs {}",
            hi.p(),
            lo.p()
        );
    }

    #[test]
    fn sliced_equals_scalar_exactly_in_sparse_regime() {
        // non-multiple-of-64 trial count exercises the scalar tail;
        // the ftn fabric exercises the per-lane Survivor fallback
        let model = FailureModel::symmetric(0.01);
        for fabric in [
            Fabric::clos_strict(2, 3),
            Fabric::benes(2),
            Fabric::ftn_reduced(1, 8, 4, 1.0),
        ] {
            let sliced = pair_blocking_estimate(&fabric, &model, 200, 5);
            let scalar = pair_blocking_estimate_scalar(&fabric, &model, 200, 5);
            assert_eq!(sliced, scalar, "{}", fabric.label());
        }
    }

    #[test]
    fn matches_the_stationary_model_hookup() {
        // The composition the study runner uses: λ, mttr → stationary
        // model → snapshot estimate. Smoke-level sanity only (the
        // quantitative sim-vs-static comparison lives in
        // tests/sim_validation.rs).
        let fabric = Fabric::clos_strict(2, 3);
        let model = FailureModel::stationary(0.02, 5.0, 0.5);
        let est = pair_blocking_estimate(&fabric, &model, 8000, 42);
        assert!(est.p() > 0.02, "u ≈ 0.09 must yield visible blocking");
        assert!(est.p() < 0.5);
    }
}
