//! Switch fabrics the engine can drive, and the repair discipline that
//! turns a cumulative failure instance into a router alive-mask.
//!
//! The discipline is §4's: a failed switch makes both its endpoints
//! faulty; repair discards faulty *internal* vertices (terminals are
//! exempt, per §6's definition of faultiness); a failed switch incident
//! to a terminal is masked by discarding its internal endpoint instead.
//! For the fault-tolerant network 𝒩 this is exactly
//! [`Survivor::routable_alive`]; for the classical fabrics the same
//! rule is applied generically. A fabric where some switch joins two
//! terminals directly (the crossbar) cannot express that switch's
//! failure as a vertex discard, so such fabrics only support fault-free
//! scenarios — the scenario validator enforces this.

use ft_core::network::FtNetwork;
use ft_core::params::Params;
use ft_core::repair::Survivor;
use ft_failure::sliced::LANES;
use ft_failure::{AliveTracker, FailureInstance, SlicedFailureMask};
use ft_graph::{Digraph, EdgeId, StagedNetwork};
use ft_networks::{crossbar, Benes, Clos, Multibutterfly};

/// A switch fabric under simulation.
#[derive(Debug)]
pub enum Fabric {
    /// The n² crossbar (trivially strictly nonblocking, fault-free only).
    Crossbar(StagedNetwork),
    /// A three-stage Clos network.
    Clos(Clos),
    /// A Beneš network (rearrangeable; greedy routing may block).
    Benes(Benes),
    /// A multibutterfly (splitters over sampled expanders).
    Multibutterfly(Multibutterfly),
    /// The paper's fault-tolerant network 𝒩.
    Ftn(Box<FtNetwork>),
}

impl Fabric {
    /// Builds an `n × n` crossbar fabric.
    pub fn crossbar(n: usize) -> Fabric {
        Fabric::Crossbar(crossbar(n))
    }

    /// Builds a strictly nonblocking Clos `C(2n−1, n, r)` fabric.
    pub fn clos_strict(n: usize, r: usize) -> Fabric {
        Fabric::Clos(Clos::strictly_nonblocking(n, r))
    }

    /// Builds a rearrangeable Clos `C(n, n, r)` fabric.
    pub fn clos_rearrangeable(n: usize, r: usize) -> Fabric {
        Fabric::Clos(Clos::rearrangeable(n, r))
    }

    /// Builds a Beneš fabric on `2^k` terminals.
    pub fn benes(k: u32) -> Fabric {
        Fabric::Benes(Benes::new(k))
    }

    /// Builds a `d`-multibutterfly fabric on `2^k` terminals whose
    /// splitter wiring is fully determined by `seed` — the same
    /// `(k, d, seed)` triple always names the identical fabric, which
    /// is what lets `ftexp` sweeps cache cells by spec content alone.
    pub fn multibutterfly(k: u32, d: usize, seed: u64) -> Fabric {
        Fabric::Multibutterfly(Multibutterfly::seeded(k, d, seed))
    }

    /// Builds a reduced-profile fault-tolerant network 𝒩.
    pub fn ftn_reduced(nu: u32, width: usize, degree: usize, gamma_factor: f64) -> Fabric {
        Fabric::Ftn(Box::new(FtNetwork::build(Params::reduced(
            nu,
            width,
            degree,
            gamma_factor,
        ))))
    }

    /// The underlying staged network.
    pub fn net(&self) -> &StagedNetwork {
        match self {
            Fabric::Crossbar(net) => net,
            Fabric::Clos(c) => &c.net,
            Fabric::Benes(b) => &b.net,
            Fabric::Multibutterfly(m) => &m.net,
            Fabric::Ftn(f) => f.net(),
        }
    }

    /// Number of input terminals (= output terminals).
    pub fn terminals(&self) -> usize {
        self.net().inputs().len()
    }

    /// A short human/JSON label for reports.
    pub fn label(&self) -> String {
        match self {
            Fabric::Crossbar(net) => format!("crossbar {}", net.inputs().len()),
            Fabric::Clos(c) => format!("clos m={} n={} r={}", c.m, c.n, c.r),
            Fabric::Benes(b) => format!("benes n={}", b.terminals()),
            Fabric::Multibutterfly(m) => format!("multibutterfly n={} d={}", m.terminals(), m.d),
            Fabric::Ftn(f) => format!("ftn nu={} n={}", f.params().nu, f.n()),
        }
    }

    /// Whether the §4 vertex-discard discipline can express every
    /// switch failure: true iff no switch joins two terminals directly.
    pub fn supports_faults(&self) -> bool {
        let g = self.net();
        let is_terminal = terminal_mask(g);
        (0..g.num_edges()).all(|e| {
            let (t, h) = g.endpoints(ft_graph::EdgeId::from(e));
            !is_terminal[t.index()] || !is_terminal[h.index()]
        })
    }

    /// The routable alive-mask for the current cumulative failure
    /// instance, under the §4 repair discipline.
    pub fn alive_mask(&self, inst: &FailureInstance) -> Vec<bool> {
        let mut out = Vec::new();
        self.alive_mask_into(inst, &mut out);
        out
    }

    /// Like [`alive_mask`](Fabric::alive_mask), writing into a
    /// caller-held buffer so Monte Carlo trial loops can reuse one
    /// allocation (the 𝒩 path still builds its `Survivor` internally).
    pub fn alive_mask_into(&self, inst: &FailureInstance, out: &mut Vec<bool>) {
        match self {
            Fabric::Ftn(f) => *out = Survivor::new(f, inst).routable_alive(),
            _ => generic_routable_alive_into(self.net(), inst, out),
        }
    }

    /// Lane-parallel form of [`alive_mask_into`](Fabric::alive_mask_into)
    /// for a 64-trial block: writes one lane word per vertex (bit *i*
    /// set ⇔ alive in lane *i*). The generic §4 discipline is computed
    /// directly on the failed-switch word planes — O(switches failed in
    /// any lane), all 64 lanes at once. The 𝒩 fabric's repair needs the
    /// full `Survivor` construction, so it takes the documented **scalar
    /// fallback**: each lane is unpacked and repaired individually, and
    /// the per-lane masks are bit-identical to
    /// [`alive_mask`](Fabric::alive_mask) of the unpacked instance
    /// (pinned by the transpose-equivalence tests).
    pub fn alive_words_into(&self, sliced: &SlicedFailureMask, out: &mut Vec<u64>) {
        match self {
            Fabric::Ftn(f) => {
                let g = self.net();
                out.clear();
                out.resize(g.num_vertices(), 0);
                let mut lane_inst = FailureInstance::perfect(g.num_edges());
                for lane in 0..LANES {
                    sliced.extract_lane_into(lane, lane_inst.mask_mut());
                    let alive = Survivor::new(f, &lane_inst).routable_alive();
                    let bit = 1u64 << lane;
                    for (w, a) in out.iter_mut().zip(alive) {
                        if a {
                            *w |= bit;
                        }
                    }
                }
            }
            _ => generic_routable_alive_words_into(self.net(), sliced, out),
        }
    }

    /// Incremental counterpart of [`alive_mask`](Fabric::alive_mask): a
    /// tracker synchronised to `inst` whose mask starts — and stays,
    /// under `fail_edge`/`repair_edge` deltas — bit-identical to the
    /// from-scratch computation. The discipline is the same local
    /// predicate for every fabric (a vertex is alive iff it is a
    /// terminal or has no incident failed switch; for 𝒩 this equals
    /// [`Survivor::routable_alive`] — see `Survivor::alive_tracker`),
    /// which is what makes a fault/repair event O(1) instead of
    /// O(V + E). The engine's debug assertions and the interleaving
    /// proptests pin the equivalence.
    pub fn alive_tracker(&self, inst: &FailureInstance) -> AliveTracker {
        let g = self.net();
        AliveTracker::new(g, g.inputs().iter().chain(g.outputs()).copied(), inst)
    }
}

fn terminal_mask(g: &StagedNetwork) -> Vec<bool> {
    let mut is_terminal = vec![false; g.num_vertices()];
    for &t in g.inputs().iter().chain(g.outputs()) {
        is_terminal[t.index()] = true;
    }
    is_terminal
}

/// The generic §4 repair discipline on a staged network: faulty
/// internal vertices (any incident failed switch) are discarded,
/// terminals are exempt, and a failed terminal-incident switch is
/// masked by discarding its internal endpoint.
pub fn generic_routable_alive(g: &StagedNetwork, inst: &FailureInstance) -> Vec<bool> {
    let mut alive = Vec::new();
    generic_routable_alive_into(g, inst, &mut alive);
    alive
}

/// Buffer-reusing form of [`generic_routable_alive`].
pub fn generic_routable_alive_into(g: &StagedNetwork, inst: &FailureInstance, out: &mut Vec<bool>) {
    assert_eq!(inst.len(), g.num_edges(), "instance/network size mismatch");
    let is_terminal = terminal_mask(g);
    out.clear();
    out.resize(g.num_vertices(), true);
    for e in inst.failed_edges() {
        let (t, h) = g.endpoints(e);
        if !is_terminal[t.index()] {
            out[t.index()] = false;
        }
        if !is_terminal[h.index()] {
            out[h.index()] = false;
        }
    }
}

/// Lane-parallel generic §4 repair: per lane identical to
/// [`generic_routable_alive`], computed for all 64 lanes from the
/// failed-switch word planes in one pass over the failed switches.
pub fn generic_routable_alive_words_into(
    g: &StagedNetwork,
    sliced: &SlicedFailureMask,
    out: &mut Vec<u64>,
) {
    assert_eq!(
        sliced.len(),
        g.num_edges(),
        "instance/network size mismatch"
    );
    let is_terminal = terminal_mask(g);
    out.clear();
    out.resize(g.num_vertices(), !0u64);
    for s in sliced.iter_failed_switches() {
        let keep = !sliced.failed_word(s);
        let (t, h) = g.endpoints(EdgeId::from(s));
        if !is_terminal[t.index()] {
            out[t.index()] &= keep;
        }
        if !is_terminal[h.index()] {
            out[h.index()] &= keep;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_failure::SwitchState;

    #[test]
    fn crossbar_rejects_faults_clos_supports_them() {
        assert!(!Fabric::crossbar(3).supports_faults());
        assert!(Fabric::clos_strict(2, 2).supports_faults());
        assert!(Fabric::benes(2).supports_faults());
        assert!(Fabric::ftn_reduced(1, 8, 4, 1.0).supports_faults());
    }

    #[test]
    fn generic_mask_exempts_terminals_and_kills_internal_endpoint() {
        let f = Fabric::clos_strict(2, 2);
        let g = f.net();
        // fail switch 0: input 0 -> first stage-1 link
        let mut states = vec![SwitchState::Normal; g.num_edges()];
        states[0] = SwitchState::Open;
        let inst = FailureInstance::from_states(states);
        let alive = f.alive_mask(&inst);
        let (t, h) = g.endpoints(ft_graph::EdgeId::from(0usize));
        assert_eq!(t, g.inputs()[0]);
        assert!(alive[t.index()], "terminal must stay alive");
        assert!(!alive[h.index()], "internal endpoint must be discarded");
    }

    #[test]
    fn perfect_instance_keeps_everything_alive() {
        let f = Fabric::clos_strict(2, 3);
        let inst = FailureInstance::perfect(f.net().num_edges());
        assert!(f.alive_mask(&inst).iter().all(|&a| a));
    }

    #[test]
    fn labels_and_terminals() {
        assert_eq!(Fabric::crossbar(4).terminals(), 4);
        assert_eq!(Fabric::clos_strict(2, 3).terminals(), 6);
        assert_eq!(Fabric::benes(3).terminals(), 8);
        assert!(Fabric::clos_strict(2, 3).label().starts_with("clos"));
    }
}
