//! Plain-text scenario specs for the `ftsim` CLI.
//!
//! A scenario is a list of `key = value` lines; `#` starts a comment.
//! Example:
//!
//! ```text
//! # strict Clos under churn faults
//! network     = clos-strict 4 4
//! pattern     = uniform
//! arrival_rate = 6.0
//! holding     = exp 1.0
//! fault_rate  = 0.0005
//! fault_open_share = 0.5
//! mttr        = 20
//! duration    = 50
//! warmup      = 0
//! seeds       = 3
//! seed_base   = 1
//! buckets     = 5
//! threads     = 0
//! ```
//!
//! Recognised `network` families: `crossbar N`, `clos-strict N R`,
//! `clos-rearr N R`, `benes K`, `multibutterfly K D SEED`,
//! `ftn NU WIDTH DEGREE GAMMA`.
//! Recognised `pattern`s: `uniform`, `permutation`,
//! `hotspot FRAC P_HOT`, `bursty MEAN_ON MEAN_OFF BOOST`.
//! Recognised `holding`s: `exp MEAN`, `pareto SHAPE MEAN`.
//! Recognised `faults` processes: `iid` (the default, driven by
//! `fault_rate`), `storm RATE WINDOW [STAGE]`, `burst RATE SIZE WINDOW`,
//! `targeted RATE`.
//! Recognised `retry` policies: `on-repair` (the default),
//! `budget N backoff BASE [shed DEPTH]`.
//! Recognised `reroute` planners: `greedy` (the default),
//! `mincost`.
//! `threads = 0` means one worker per available core.
//!
//! Every diagnostic — malformed directive, unknown key, *and*
//! out-of-range value caught by validation — is reported as
//! `line N: <message>`, pointing at the directive that set the
//! offending value. The parser is built on [`ScenarioBuilder`], which
//! the `ftexp` grid runner reuses to overlay `sweep` assignments on a
//! base scenario; see `docs/SCENARIOS.md` for the full grammar.

use crate::engine::SimConfig;
use crate::fabric::Fabric;
use crate::inject::{FaultSpec, RerouteMode, RetryPolicy};
use crate::workload::{HoldingTime, TrafficPattern};

/// Which fabric a scenario builds (kept symbolic so reports can echo it).
#[derive(Clone, Debug, PartialEq)]
pub enum FabricSpec {
    /// `crossbar N`
    Crossbar(usize),
    /// `clos-strict N R`
    ClosStrict(usize, usize),
    /// `clos-rearr N R`
    ClosRearrangeable(usize, usize),
    /// `benes K`
    Benes(u32),
    /// `multibutterfly K D SEED`
    Multibutterfly(u32, usize, u64),
    /// `ftn NU WIDTH DEGREE GAMMA`
    Ftn(u32, usize, usize, f64),
}

impl FabricSpec {
    /// Builds the fabric.
    pub fn build(&self) -> Fabric {
        match *self {
            FabricSpec::Crossbar(n) => Fabric::crossbar(n),
            FabricSpec::ClosStrict(n, r) => Fabric::clos_strict(n, r),
            FabricSpec::ClosRearrangeable(n, r) => Fabric::clos_rearrangeable(n, r),
            FabricSpec::Benes(k) => Fabric::benes(k),
            FabricSpec::Multibutterfly(k, d, seed) => Fabric::multibutterfly(k, d, seed),
            FabricSpec::Ftn(nu, w, d, g) => Fabric::ftn_reduced(nu, w, d, g),
        }
    }

    /// The spec as it appeared in the scenario text.
    pub fn to_spec_string(&self) -> String {
        match *self {
            FabricSpec::Crossbar(n) => format!("crossbar {n}"),
            FabricSpec::ClosStrict(n, r) => format!("clos-strict {n} {r}"),
            FabricSpec::ClosRearrangeable(n, r) => format!("clos-rearr {n} {r}"),
            FabricSpec::Benes(k) => format!("benes {k}"),
            FabricSpec::Multibutterfly(k, d, seed) => format!("multibutterfly {k} {d} {seed}"),
            FabricSpec::Ftn(nu, w, d, g) => format!("ftn {nu} {w} {d} {g}"),
        }
    }

    /// Parses a bare fabric spec (the value side of a `network =`
    /// directive, e.g. `clos-strict 4 4`) — the inverse of
    /// [`FabricSpec::to_spec_string`]. The `ftserve` reload request
    /// carries specs in this form.
    pub fn parse(spec: &str) -> Result<FabricSpec, String> {
        let words: Vec<&str> = spec.split_whitespace().collect();
        parse_network(&words)
    }
}

/// A parsed scenario: fabric, simulation parameters, seeds, threading.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Fabric to build.
    pub fabric: FabricSpec,
    /// Per-seed simulation parameters.
    pub config: SimConfig,
    /// Seeds to sweep: `seed_base .. seed_base + seeds`.
    pub seed_base: u64,
    /// Number of seeds.
    pub seeds: u64,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
}

/// The directive keys a scenario recognises, in canonical order.
///
/// The `ftexp` grid parser checks `sweep` targets against this list (it
/// additionally refuses to sweep `threads`, which must not affect
/// results).
pub const SCENARIO_KEYS: &[&str] = &[
    "network",
    "pattern",
    "holding",
    "arrival_rate",
    "fault_rate",
    "fault_open_share",
    "mttr",
    "duration",
    "warmup",
    "buckets",
    "faults",
    "retry",
    "reroute",
    "seeds",
    "seed_base",
    "threads",
];

/// Incremental scenario assembly: one `set` call per directive, then
/// [`build`](ScenarioBuilder::build).
///
/// Both `Scenario::parse` and the `ftexp` grid expander funnel through
/// this type, so a sweep cell obeys exactly the same per-key grammar
/// and validation rules as a hand-written `.ftsim` file. The builder
/// remembers the source line of each assignment; `build` attributes
/// validation failures (out-of-range values, inconsistent
/// combinations) to the line that set the offending key.
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    fabric: Option<FabricSpec>,
    config: SimConfig,
    seeds: u64,
    seed_base: u64,
    threads: usize,
    /// `lines[i]` = source line that last set `SCENARIO_KEYS[i]`.
    lines: [Option<usize>; SCENARIO_KEYS.len()],
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        ScenarioBuilder {
            fabric: None,
            config: SimConfig::default(),
            seeds: 1,
            seed_base: 1,
            threads: 0,
            lines: [None; SCENARIO_KEYS.len()],
        }
    }
}

impl ScenarioBuilder {
    /// A builder holding every default (no fabric yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies one `key = value` directive read from source line
    /// `line` (1-based; used to attribute later validation errors).
    /// The returned message carries no line prefix — the caller owns
    /// presentation.
    pub fn set(&mut self, key: &str, value: &str, line: usize) -> Result<(), String> {
        let words: Vec<&str> = value.split_whitespace().collect();
        match key {
            "network" => self.fabric = Some(parse_network(&words)?),
            "pattern" => self.config.pattern = parse_pattern(&words)?,
            "holding" => self.config.holding = parse_holding(&words)?,
            "arrival_rate" => self.config.arrival_rate = parse_num(value)?,
            "fault_rate" => self.config.fault_rate = parse_num(value)?,
            "fault_open_share" => self.config.fault_open_share = parse_num(value)?,
            "mttr" => self.config.mttr = parse_num(value)?,
            "duration" => self.config.duration = parse_num(value)?,
            "warmup" => self.config.warmup = parse_num(value)?,
            "buckets" => self.config.buckets = parse_int(value)?,
            "faults" => self.config.faults = parse_faults(&words)?,
            "retry" => self.config.retry = parse_retry(&words)?,
            "reroute" => self.config.reroute = parse_reroute(&words)?,
            "seeds" => self.seeds = parse_int(value)? as u64,
            "seed_base" => self.seed_base = parse_int(value)? as u64,
            "threads" => self.threads = parse_int(value)?,
            other => return Err(format!("unknown key `{other}`")),
        }
        let idx = SCENARIO_KEYS.iter().position(|&k| k == key).unwrap();
        self.lines[idx] = Some(line);
        Ok(())
    }

    /// The source line that last set `key`, if any.
    fn line_of(&self, key: &str) -> Option<usize> {
        let idx = SCENARIO_KEYS.iter().position(|&k| k == key)?;
        self.lines[idx]
    }

    /// The worker-thread count currently assembled (0 = one per core).
    /// The `ftexp` CLI reads this as the spec-level default before its
    /// own `--threads` override applies.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether a `network` directive has been applied. The `ftexp`
    /// grid parser uses this to reject specs that neither set nor
    /// sweep the network — otherwise every cell would fail `build` and
    /// the whole study would silently come out skipped.
    pub fn has_network(&self) -> bool {
        self.fabric.is_some()
    }

    /// Validates the assembled scenario and returns it. Errors are
    /// prefixed `line N:` when the offending key was set by a
    /// directive (defaults that fail in combination with one report
    /// the line of the directive they clash with).
    pub fn build(&self) -> Result<Scenario, String> {
        let fabric = self
            .fabric
            .clone()
            .ok_or("scenario must set `network = ...`")?;
        let scenario = Scenario {
            fabric,
            config: self.config.clone(),
            seed_base: self.seed_base,
            seeds: self.seeds,
            threads: self.threads,
        };
        if let Err((key, msg)) = scenario.validate() {
            return Err(match self.line_of(key) {
                Some(line) => format!("line {line}: {msg}"),
                None => msg,
            });
        }
        Ok(scenario)
    }
}

impl Scenario {
    /// Parses a scenario from text. Unknown keys, malformed values and
    /// inconsistent combinations are reported with line numbers.
    pub fn parse(text: &str) -> Result<Scenario, String> {
        let mut b = ScenarioBuilder::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let at = |msg: String| format!("line {}: {msg}", lineno + 1);
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| at(format!("expected `key = value`, got `{line}`")))?;
            b.set(key.trim(), value.trim(), lineno + 1).map_err(at)?;
        }
        b.build()
    }

    /// The §2/§4 consistency rules every scenario must satisfy. On
    /// failure names the offending key (for line attribution) and the
    /// message.
    fn validate(&self) -> Result<(), (&'static str, String)> {
        let c = &self.config;
        if !(c.arrival_rate > 0.0 && c.arrival_rate.is_finite()) {
            return Err((
                "arrival_rate",
                format!("arrival_rate must be positive, got {}", c.arrival_rate),
            ));
        }
        if c.holding.mean() <= 0.0 || !c.holding.mean().is_finite() {
            return Err(("holding", "holding mean must be positive".into()));
        }
        if let HoldingTime::Pareto { shape, .. } = c.holding {
            if shape <= 1.0 {
                return Err((
                    "holding",
                    format!("pareto shape must exceed 1 for a finite mean, got {shape}"),
                ));
            }
        }
        if c.fault_rate < 0.0 {
            return Err(("fault_rate", "fault_rate must be nonnegative".into()));
        }
        if c.mttr < 0.0 {
            return Err(("mttr", "mttr must be nonnegative".into()));
        }
        if !(0.0..=1.0).contains(&c.fault_open_share) {
            return Err((
                "fault_open_share",
                format!(
                    "fault_open_share must be in [0, 1], got {}",
                    c.fault_open_share
                ),
            ));
        }
        if !(c.duration > 0.0 && c.duration.is_finite()) {
            return Err((
                "duration",
                format!("duration must be positive, got {}", c.duration),
            ));
        }
        if c.warmup < 0.0 || c.warmup >= c.duration {
            return Err((
                "warmup",
                format!(
                    "warmup must be in [0, duration), got {} of {}",
                    c.warmup, c.duration
                ),
            ));
        }
        if c.buckets == 0 {
            return Err(("buckets", "buckets must be at least 1".into()));
        }
        if self.seeds == 0 {
            return Err(("seeds", "seeds must be at least 1".into()));
        }
        if let TrafficPattern::Hotspot {
            hot_fraction,
            p_hot,
        } = c.pattern
        {
            let frac_ok = 0.0 < hot_fraction && hot_fraction <= 1.0;
            if !frac_ok || !(0.0..=1.0).contains(&p_hot) {
                return Err((
                    "pattern",
                    "hotspot needs 0 < FRAC <= 1 and 0 <= P_HOT <= 1".into(),
                ));
            }
        }
        if let TrafficPattern::Bursty {
            mean_on,
            mean_off,
            boost,
        } = c.pattern
        {
            if mean_on <= 0.0 || mean_off <= 0.0 || boost < 1.0 {
                return Err((
                    "pattern",
                    "bursty needs MEAN_ON, MEAN_OFF > 0 and BOOST >= 1".into(),
                ));
            }
        }
        match c.faults {
            FaultSpec::Iid => {}
            FaultSpec::Storm { rate, window, .. } => {
                if !(rate > 0.0 && rate.is_finite()) {
                    return Err(("faults", format!("storm rate must be positive, got {rate}")));
                }
                if window < 0.0 || !window.is_finite() {
                    return Err((
                        "faults",
                        format!("storm window must be nonnegative, got {window}"),
                    ));
                }
            }
            FaultSpec::Burst { rate, size, window } => {
                if !(rate > 0.0 && rate.is_finite()) {
                    return Err(("faults", format!("burst rate must be positive, got {rate}")));
                }
                if size == 0 {
                    return Err(("faults", "burst size must be at least 1".into()));
                }
                if window < 0.0 || !window.is_finite() {
                    return Err((
                        "faults",
                        format!("burst window must be nonnegative, got {window}"),
                    ));
                }
            }
            FaultSpec::Targeted { rate } => {
                if !(rate > 0.0 && rate.is_finite()) {
                    return Err((
                        "faults",
                        format!("targeted rate must be positive, got {rate}"),
                    ));
                }
            }
        }
        if !c.faults.is_iid() && c.fault_rate > 0.0 {
            return Err((
                "faults",
                "fault_rate drives the i.i.d. process only; set fault_rate = 0 \
                 when a correlated injector supplies its own rate"
                    .into(),
            ));
        }
        if let RetryPolicy::Backoff { base, .. } = c.retry {
            if !(base > 0.0 && base.is_finite()) {
                return Err((
                    "retry",
                    format!("backoff base must be positive, got {base}"),
                ));
            }
        }
        if (c.fault_rate > 0.0 || !c.faults.is_iid())
            && matches!(self.fabric, FabricSpec::Crossbar(_))
        {
            return Err((
                "network",
                "crossbar switches join two terminals: the vertex-discard repair \
                 discipline cannot express their failures — use a staged fabric \
                 (clos/benes/multibutterfly/ftn) or disable faults"
                    .into(),
            ));
        }
        Ok(())
    }

    /// The seed list the sweep runs.
    pub fn seed_list(&self) -> Vec<u64> {
        (0..self.seeds).map(|k| self.seed_base + k).collect()
    }
}

fn parse_num(s: &str) -> Result<f64, String> {
    s.parse::<f64>()
        .map_err(|_| format!("expected a number, got `{s}`"))
        .and_then(|x| {
            if x.is_finite() {
                Ok(x)
            } else {
                Err(format!("expected a finite number, got `{s}`"))
            }
        })
}

fn parse_int(s: &str) -> Result<usize, String> {
    s.parse::<usize>()
        .map_err(|_| format!("expected a nonnegative integer, got `{s}`"))
}

fn parse_network(words: &[&str]) -> Result<FabricSpec, String> {
    let usage = "network = crossbar N | clos-strict N R | clos-rearr N R | benes K \
                 | multibutterfly K D SEED | ftn NU WIDTH DEGREE GAMMA";
    let int = |s: &str| parse_int(s);
    match words {
        ["crossbar", n] => Ok(FabricSpec::Crossbar(int(n)?.max(1))),
        ["clos-strict", n, r] => Ok(FabricSpec::ClosStrict(int(n)?.max(1), int(r)?.max(1))),
        ["clos-rearr", n, r] => Ok(FabricSpec::ClosRearrangeable(
            int(n)?.max(1),
            int(r)?.max(1),
        )),
        ["benes", k] => Ok(FabricSpec::Benes(int(k)?.clamp(1, 16) as u32)),
        ["multibutterfly", k, d, seed] => Ok(FabricSpec::Multibutterfly(
            int(k)?.clamp(1, 16) as u32,
            int(d)?.max(1),
            int(seed)? as u64,
        )),
        ["ftn", nu, w, d, g] => Ok(FabricSpec::Ftn(
            int(nu)?.clamp(1, 8) as u32,
            int(w)?,
            int(d)?,
            parse_num(g)?,
        )),
        _ => Err(format!(
            "unrecognised network `{}`; {usage}",
            words.join(" ")
        )),
    }
}

fn parse_pattern(words: &[&str]) -> Result<TrafficPattern, String> {
    let usage =
        "pattern = uniform | permutation | hotspot FRAC P_HOT | bursty MEAN_ON MEAN_OFF BOOST";
    match words {
        ["uniform"] => Ok(TrafficPattern::Uniform),
        ["permutation"] => Ok(TrafficPattern::Permutation),
        ["hotspot", f, p] => Ok(TrafficPattern::Hotspot {
            hot_fraction: parse_num(f)?,
            p_hot: parse_num(p)?,
        }),
        ["bursty", on, off, boost] => Ok(TrafficPattern::Bursty {
            mean_on: parse_num(on)?,
            mean_off: parse_num(off)?,
            boost: parse_num(boost)?,
        }),
        _ => Err(format!(
            "unrecognised pattern `{}`; {usage}",
            words.join(" ")
        )),
    }
}

fn parse_faults(words: &[&str]) -> Result<FaultSpec, String> {
    let usage = "faults = iid | storm RATE WINDOW [STAGE] | burst RATE SIZE WINDOW | targeted RATE";
    match words {
        ["iid"] => Ok(FaultSpec::Iid),
        ["storm", rate, window] => Ok(FaultSpec::Storm {
            rate: parse_num(rate)?,
            window: parse_num(window)?,
            stage: None,
        }),
        ["storm", rate, window, stage] => Ok(FaultSpec::Storm {
            rate: parse_num(rate)?,
            window: parse_num(window)?,
            stage: Some(parse_int(stage)?),
        }),
        ["burst", rate, size, window] => Ok(FaultSpec::Burst {
            rate: parse_num(rate)?,
            size: parse_int(size)?,
            window: parse_num(window)?,
        }),
        ["targeted", rate] => Ok(FaultSpec::Targeted {
            rate: parse_num(rate)?,
        }),
        _ => Err(format!(
            "unrecognised faults `{}`; {usage}",
            words.join(" ")
        )),
    }
}

fn parse_retry(words: &[&str]) -> Result<RetryPolicy, String> {
    let usage = "retry = on-repair | budget N backoff BASE [shed DEPTH]";
    match words {
        ["on-repair"] => Ok(RetryPolicy::OnRepair),
        ["budget", n, "backoff", base] => Ok(RetryPolicy::Backoff {
            budget: parse_int(n)? as u32,
            base: parse_num(base)?,
            shed_depth: 0,
        }),
        ["budget", n, "backoff", base, "shed", depth] => Ok(RetryPolicy::Backoff {
            budget: parse_int(n)? as u32,
            base: parse_num(base)?,
            shed_depth: parse_int(depth)?,
        }),
        _ => Err(format!("unrecognised retry `{}`; {usage}", words.join(" "))),
    }
}

fn parse_reroute(words: &[&str]) -> Result<RerouteMode, String> {
    let usage = "reroute = greedy | mincost";
    match words {
        ["greedy"] => Ok(RerouteMode::Greedy),
        ["mincost"] => Ok(RerouteMode::Mincost),
        _ => Err(format!(
            "unrecognised reroute `{}`; {usage}",
            words.join(" ")
        )),
    }
}

fn parse_holding(words: &[&str]) -> Result<HoldingTime, String> {
    let usage = "holding = exp MEAN | pareto SHAPE MEAN";
    match words {
        ["exp", mean] => Ok(HoldingTime::Exponential {
            mean: parse_num(mean)?,
        }),
        ["pareto", shape, mean] => Ok(HoldingTime::Pareto {
            shape: parse_num(shape)?,
            mean: parse_num(mean)?,
        }),
        _ => Err(format!(
            "unrecognised holding `{}`; {usage}",
            words.join(" ")
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# comment line
network = clos-strict 2 3   # trailing comment
pattern = hotspot 0.25 0.8
holding = pareto 2.5 1.5
arrival_rate = 4
fault_rate = 0.001
mttr = 10
duration = 200
warmup = 20
seeds = 4
seed_base = 7
buckets = 8
threads = 2
";

    #[test]
    fn parses_a_full_scenario() {
        let s = Scenario::parse(GOOD).unwrap();
        assert_eq!(s.fabric, FabricSpec::ClosStrict(2, 3));
        assert_eq!(
            s.config.pattern,
            TrafficPattern::Hotspot {
                hot_fraction: 0.25,
                p_hot: 0.8
            }
        );
        assert_eq!(
            s.config.holding,
            HoldingTime::Pareto {
                shape: 2.5,
                mean: 1.5
            }
        );
        assert_eq!(s.config.arrival_rate, 4.0);
        assert_eq!(s.config.warmup, 20.0);
        assert_eq!(s.seed_list(), vec![7, 8, 9, 10]);
        assert_eq!(s.threads, 2);
        assert_eq!(s.fabric.to_spec_string(), "clos-strict 2 3");
    }

    #[test]
    fn defaults_fill_in() {
        let s = Scenario::parse("network = benes 3\n").unwrap();
        assert_eq!(s.fabric, FabricSpec::Benes(3));
        assert_eq!(s.config.pattern, TrafficPattern::Uniform);
        assert_eq!(s.config.fault_rate, 0.0);
        assert_eq!(s.seeds, 1);
    }

    #[test]
    fn multibutterfly_specs_parse_and_build() {
        let s = Scenario::parse("network = multibutterfly 3 2 7\n").unwrap();
        assert_eq!(s.fabric, FabricSpec::Multibutterfly(3, 2, 7));
        assert_eq!(s.fabric.to_spec_string(), "multibutterfly 3 2 7");
        assert_eq!(s.fabric.build().terminals(), 8);
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        // malformed directive (no `=`)
        let err = Scenario::parse("network = clos-strict 2 2\nnot a directive\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        assert!(err.contains("expected `key = value`"), "{err}");
        // unknown key
        let err = Scenario::parse("network = clos-strict 2 2\nbogus_key = 1\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        assert!(err.contains("unknown key `bogus_key`"), "{err}");
        // malformed value
        let err = Scenario::parse("network = clos-strict 2 2\narrival_rate = fast\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        assert!(err.contains("expected a number"), "{err}");
        let err = Scenario::parse("network = hypercube 4\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        assert!(err.contains("unrecognised network"), "{err}");
        let err = Scenario::parse("pattern = uniform\n").unwrap_err();
        assert!(err.contains("must set `network"), "{err}");
    }

    #[test]
    fn validation_errors_point_at_the_offending_line() {
        // out-of-range value: the line of the value's own directive
        let err = Scenario::parse("network = clos-strict 2 2\n\narrival_rate = 0\n").unwrap_err();
        assert!(err.starts_with("line 3:"), "{err}");
        assert!(err.contains("arrival_rate must be positive"), "{err}");
        let err =
            Scenario::parse("fault_open_share = 1.5\nnetwork = clos-strict 2 2\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        assert!(err.contains("fault_open_share"), "{err}");
        // inconsistent combination: attributed to the named key's line
        let err = Scenario::parse("network = clos-strict 2 2\nduration = 100\nwarmup = 100\n")
            .unwrap_err();
        assert!(err.starts_with("line 3:"), "{err}");
        assert!(err.contains("warmup must be in [0, duration)"), "{err}");
        // crossbar + faults: attributed to the `network` line
        let err = Scenario::parse("fault_rate = 0.01\nnetwork = crossbar 4\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        assert!(err.contains("crossbar"), "{err}");
    }

    #[test]
    fn faults_and_retry_directives_parse() {
        let s = Scenario::parse("network = clos-strict 2 2\nfaults = storm 0.05 2.0 1\nmttr = 5\n")
            .unwrap();
        assert_eq!(
            s.config.faults,
            FaultSpec::Storm {
                rate: 0.05,
                window: 2.0,
                stage: Some(1)
            }
        );
        assert_eq!(s.config.faults.to_spec_string(), "storm 0.05 2 1");
        let s = Scenario::parse("network = clos-strict 2 2\nfaults = burst 0.1 3 1.5\nmttr = 5\n")
            .unwrap();
        assert_eq!(
            s.config.faults,
            FaultSpec::Burst {
                rate: 0.1,
                size: 3,
                window: 1.5
            }
        );
        let s = Scenario::parse("network = clos-strict 2 2\nfaults = targeted 0.02\nmttr = 5\n")
            .unwrap();
        assert_eq!(s.config.faults, FaultSpec::Targeted { rate: 0.02 });
        let s =
            Scenario::parse("network = clos-strict 2 2\nretry = budget 3 backoff 0.5 shed 64\n")
                .unwrap();
        assert_eq!(
            s.config.retry,
            RetryPolicy::Backoff {
                budget: 3,
                base: 0.5,
                shed_depth: 64
            }
        );
        let s = Scenario::parse("network = clos-strict 2 2\nretry = on-repair\n").unwrap();
        assert_eq!(s.config.retry, RetryPolicy::OnRepair);
    }

    #[test]
    fn reroute_directives_parse() {
        let s = Scenario::parse("network = clos-strict 2 2\nreroute = mincost\n").unwrap();
        assert_eq!(s.config.reroute, RerouteMode::Mincost);
        assert_eq!(s.config.reroute.to_spec_string(), "mincost");
        let s = Scenario::parse("network = clos-strict 2 2\nreroute = greedy\n").unwrap();
        assert_eq!(s.config.reroute, RerouteMode::Greedy);
        // omitted entirely: the greedy default
        let s = Scenario::parse("network = clos-strict 2 2\n").unwrap();
        assert_eq!(s.config.reroute, RerouteMode::Greedy);
    }

    #[test]
    fn malformed_reroute_directives_carry_line_numbers() {
        for text in [
            "network = clos-strict 2 2\nreroute = cheapest\n",
            "network = clos-strict 2 2\nreroute = mincost extra\n",
            "network = clos-strict 2 2\nreroute =\n",
        ] {
            let err = Scenario::parse(text).unwrap_err();
            assert!(err.starts_with("line 2:"), "{text} -> {err}");
            assert!(err.contains("unrecognised reroute"), "{text} -> {err}");
        }
    }

    #[test]
    fn malformed_faults_directives_carry_line_numbers() {
        for (text, needle) in [
            // unknown process
            (
                "network = clos-strict 2 2\nfaults = meteor 1\n",
                "unrecognised faults",
            ),
            // wrong arity
            (
                "network = clos-strict 2 2\nfaults = storm 0.05\n",
                "unrecognised faults",
            ),
            (
                "network = clos-strict 2 2\nfaults = targeted\n",
                "unrecognised faults",
            ),
            // non-numeric field
            (
                "network = clos-strict 2 2\nfaults = burst fast 3 1\n",
                "expected a number",
            ),
            (
                "network = clos-strict 2 2\nfaults = storm 0.05 2.0 mid\n",
                "expected a nonnegative integer",
            ),
        ] {
            let err = Scenario::parse(text).unwrap_err();
            assert!(err.starts_with("line 2:"), "{text} -> {err}");
            assert!(err.contains(needle), "{text} -> {err}");
        }
    }

    #[test]
    fn malformed_retry_directives_carry_line_numbers() {
        for (text, needle) in [
            (
                "network = clos-strict 2 2\nretry = always\n",
                "unrecognised retry",
            ),
            (
                "network = clos-strict 2 2\nretry = budget 3\n",
                "unrecognised retry",
            ),
            (
                "network = clos-strict 2 2\nretry = budget 3 backoff 0.5 shed\n",
                "unrecognised retry",
            ),
            (
                "network = clos-strict 2 2\nretry = budget many backoff 0.5\n",
                "expected a nonnegative integer",
            ),
            (
                "network = clos-strict 2 2\nretry = budget 3 backoff slow\n",
                "expected a number",
            ),
        ] {
            let err = Scenario::parse(text).unwrap_err();
            assert!(err.starts_with("line 2:"), "{text} -> {err}");
            assert!(err.contains(needle), "{text} -> {err}");
        }
    }

    #[test]
    fn faults_and_retry_validation_points_at_the_offending_line() {
        // zero storm rate
        let err = Scenario::parse("network = clos-strict 2 2\nfaults = storm 0 2.0\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        assert!(err.contains("storm rate must be positive"), "{err}");
        // negative window
        let err =
            Scenario::parse("network = clos-strict 2 2\nfaults = storm 0.05 -1\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        assert!(err.contains("storm window must be nonnegative"), "{err}");
        // zero burst size
        let err =
            Scenario::parse("network = clos-strict 2 2\nfaults = burst 0.1 0 1\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        assert!(err.contains("burst size must be at least 1"), "{err}");
        // correlated injector + i.i.d. fault_rate clash
        let err = Scenario::parse(
            "network = clos-strict 2 2\nfault_rate = 0.01\nfaults = targeted 0.02\n",
        )
        .unwrap_err();
        assert!(err.starts_with("line 3:"), "{err}");
        assert!(err.contains("fault_rate drives the i.i.d."), "{err}");
        // zero backoff base
        let err =
            Scenario::parse("network = clos-strict 2 2\nretry = budget 3 backoff 0\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        assert!(err.contains("backoff base must be positive"), "{err}");
        // crossbar + correlated faults: attributed to the network line
        let err = Scenario::parse("faults = storm 0.05 2\nnetwork = crossbar 4\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        assert!(err.contains("crossbar"), "{err}");
    }

    #[test]
    fn validation_rejects_nonsense() {
        let bad = [
            "network = clos-strict 2 2\narrival_rate = 0\n",
            "network = clos-strict 2 2\nholding = pareto 0.9 1\n",
            "network = clos-strict 2 2\nduration = 100\nwarmup = 100\n",
            "network = clos-strict 2 2\nseeds = 0\n",
            "network = clos-strict 2 2\nfault_open_share = 1.5\n",
            "network = crossbar 4\nfault_rate = 0.01\n",
            "network = clos-strict 2 2\npattern = bursty 1 1 0.5\n",
        ];
        for text in bad {
            assert!(Scenario::parse(text).is_err(), "accepted: {text}");
        }
    }

    #[test]
    fn builder_overrides_compose_like_parsing() {
        // the grid-runner discipline: parse a base, overlay assignments
        let mut b = ScenarioBuilder::new();
        b.set("network", "clos-strict 2 2", 1).unwrap();
        b.set("arrival_rate", "2.0", 2).unwrap();
        b.set("arrival_rate", "8.0", 10).unwrap(); // override wins
        let s = b.build().unwrap();
        assert_eq!(s.config.arrival_rate, 8.0);
        // a bad override reports the override's line
        b.set("warmup", "500", 11).unwrap();
        let err = b.build().unwrap_err();
        assert!(err.starts_with("line 11:"), "{err}");
    }

    #[test]
    fn specs_build_their_fabrics() {
        for (text, terminals) in [
            ("network = crossbar 4\n", 4),
            ("network = clos-strict 2 3\n", 6),
            ("network = clos-rearr 2 2\n", 4),
            ("network = benes 2\n", 4),
            ("network = multibutterfly 2 2 1\n", 4),
        ] {
            let s = Scenario::parse(text).unwrap();
            assert_eq!(s.fabric.build().terminals(), terminals, "{text}");
        }
    }
}
