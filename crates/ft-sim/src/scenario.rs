//! Plain-text scenario specs for the `ftsim` CLI.
//!
//! A scenario is a list of `key = value` lines; `#` starts a comment.
//! Example:
//!
//! ```text
//! # strict Clos under churn faults
//! network     = clos-strict 4 4
//! pattern     = uniform
//! arrival_rate = 6.0
//! holding     = exp 1.0
//! fault_rate  = 0.0005
//! fault_open_share = 0.5
//! mttr        = 20
//! duration    = 50
//! warmup      = 0
//! seeds       = 3
//! seed_base   = 1
//! buckets     = 5
//! threads     = 0
//! ```
//!
//! Recognised `network` families: `crossbar N`, `clos-strict N R`,
//! `clos-rearr N R`, `benes K`, `ftn NU WIDTH DEGREE GAMMA`.
//! Recognised `pattern`s: `uniform`, `permutation`,
//! `hotspot FRAC P_HOT`, `bursty MEAN_ON MEAN_OFF BOOST`.
//! Recognised `holding`s: `exp MEAN`, `pareto SHAPE MEAN`.
//! `threads = 0` means one worker per available core.

use crate::engine::SimConfig;
use crate::fabric::Fabric;
use crate::workload::{HoldingTime, TrafficPattern};

/// Which fabric a scenario builds (kept symbolic so reports can echo it).
#[derive(Clone, Debug, PartialEq)]
pub enum FabricSpec {
    /// `crossbar N`
    Crossbar(usize),
    /// `clos-strict N R`
    ClosStrict(usize, usize),
    /// `clos-rearr N R`
    ClosRearrangeable(usize, usize),
    /// `benes K`
    Benes(u32),
    /// `ftn NU WIDTH DEGREE GAMMA`
    Ftn(u32, usize, usize, f64),
}

impl FabricSpec {
    /// Builds the fabric.
    pub fn build(&self) -> Fabric {
        match *self {
            FabricSpec::Crossbar(n) => Fabric::crossbar(n),
            FabricSpec::ClosStrict(n, r) => Fabric::clos_strict(n, r),
            FabricSpec::ClosRearrangeable(n, r) => Fabric::clos_rearrangeable(n, r),
            FabricSpec::Benes(k) => Fabric::benes(k),
            FabricSpec::Ftn(nu, w, d, g) => Fabric::ftn_reduced(nu, w, d, g),
        }
    }

    /// The spec as it appeared in the scenario text.
    pub fn to_spec_string(&self) -> String {
        match *self {
            FabricSpec::Crossbar(n) => format!("crossbar {n}"),
            FabricSpec::ClosStrict(n, r) => format!("clos-strict {n} {r}"),
            FabricSpec::ClosRearrangeable(n, r) => format!("clos-rearr {n} {r}"),
            FabricSpec::Benes(k) => format!("benes {k}"),
            FabricSpec::Ftn(nu, w, d, g) => format!("ftn {nu} {w} {d} {g}"),
        }
    }
}

/// A parsed scenario: fabric, simulation parameters, seeds, threading.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Fabric to build.
    pub fabric: FabricSpec,
    /// Per-seed simulation parameters.
    pub config: SimConfig,
    /// Seeds to sweep: `seed_base .. seed_base + seeds`.
    pub seed_base: u64,
    /// Number of seeds.
    pub seeds: u64,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
}

impl Scenario {
    /// Parses a scenario from text. Unknown keys, malformed values and
    /// inconsistent combinations are reported with line numbers.
    pub fn parse(text: &str) -> Result<Scenario, String> {
        let mut fabric: Option<FabricSpec> = None;
        let mut pattern = TrafficPattern::Uniform;
        let mut holding = HoldingTime::Exponential { mean: 1.0 };
        let mut arrival_rate = 1.0f64;
        let mut fault_rate = 0.0f64;
        let mut fault_open_share = 0.5f64;
        let mut mttr = 0.0f64;
        let mut duration = 100.0f64;
        let mut warmup = 0.0f64;
        let mut buckets = 10usize;
        let mut seeds = 1u64;
        let mut seed_base = 1u64;
        let mut threads = 0usize;

        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let at = |msg: String| format!("line {}: {msg}", lineno + 1);
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| at(format!("expected `key = value`, got `{line}`")))?;
            let (key, value) = (key.trim(), value.trim());
            let words: Vec<&str> = value.split_whitespace().collect();
            match key {
                "network" => fabric = Some(parse_network(&words).map_err(at)?),
                "pattern" => pattern = parse_pattern(&words).map_err(at)?,
                "holding" => holding = parse_holding(&words).map_err(at)?,
                "arrival_rate" => arrival_rate = parse_num(value).map_err(at)?,
                "fault_rate" => fault_rate = parse_num(value).map_err(at)?,
                "fault_open_share" => fault_open_share = parse_num(value).map_err(at)?,
                "mttr" => mttr = parse_num(value).map_err(at)?,
                "duration" => duration = parse_num(value).map_err(at)?,
                "warmup" => warmup = parse_num(value).map_err(at)?,
                "buckets" => buckets = parse_int(value).map_err(at)?,
                "seeds" => seeds = parse_int(value).map_err(at)? as u64,
                "seed_base" => seed_base = parse_int(value).map_err(at)? as u64,
                "threads" => threads = parse_int(value).map_err(at)?,
                other => return Err(at(format!("unknown key `{other}`"))),
            }
        }

        let fabric = fabric.ok_or("scenario must set `network = ...`")?;
        let scenario = Scenario {
            fabric,
            config: SimConfig {
                arrival_rate,
                holding,
                pattern,
                fault_rate,
                fault_open_share,
                mttr,
                duration,
                warmup,
                buckets,
            },
            seed_base,
            seeds,
            threads,
        };
        scenario.validate()?;
        Ok(scenario)
    }

    fn validate(&self) -> Result<(), String> {
        let c = &self.config;
        if !(c.arrival_rate > 0.0 && c.arrival_rate.is_finite()) {
            return Err(format!(
                "arrival_rate must be positive, got {}",
                c.arrival_rate
            ));
        }
        if c.holding.mean() <= 0.0 || !c.holding.mean().is_finite() {
            return Err("holding mean must be positive".into());
        }
        if let HoldingTime::Pareto { shape, .. } = c.holding {
            if shape <= 1.0 {
                return Err(format!(
                    "pareto shape must exceed 1 for a finite mean, got {shape}"
                ));
            }
        }
        if c.fault_rate < 0.0 || c.mttr < 0.0 {
            return Err("fault_rate and mttr must be nonnegative".into());
        }
        if !(0.0..=1.0).contains(&c.fault_open_share) {
            return Err(format!(
                "fault_open_share must be in [0, 1], got {}",
                c.fault_open_share
            ));
        }
        if !(c.duration > 0.0 && c.duration.is_finite()) {
            return Err(format!("duration must be positive, got {}", c.duration));
        }
        if c.warmup < 0.0 || c.warmup >= c.duration {
            return Err(format!(
                "warmup must be in [0, duration), got {} of {}",
                c.warmup, c.duration
            ));
        }
        if c.buckets == 0 {
            return Err("buckets must be at least 1".into());
        }
        if self.seeds == 0 {
            return Err("seeds must be at least 1".into());
        }
        if let TrafficPattern::Hotspot {
            hot_fraction,
            p_hot,
        } = c.pattern
        {
            let frac_ok = 0.0 < hot_fraction && hot_fraction <= 1.0;
            if !frac_ok || !(0.0..=1.0).contains(&p_hot) {
                return Err("hotspot needs 0 < FRAC <= 1 and 0 <= P_HOT <= 1".into());
            }
        }
        if let TrafficPattern::Bursty {
            mean_on,
            mean_off,
            boost,
        } = c.pattern
        {
            if mean_on <= 0.0 || mean_off <= 0.0 || boost < 1.0 {
                return Err("bursty needs MEAN_ON, MEAN_OFF > 0 and BOOST >= 1".into());
            }
        }
        if c.fault_rate > 0.0 && matches!(self.fabric, FabricSpec::Crossbar(_)) {
            return Err(
                "crossbar switches join two terminals: the vertex-discard repair \
                 discipline cannot express their failures — use a staged fabric \
                 (clos/benes/ftn) or set fault_rate = 0"
                    .into(),
            );
        }
        Ok(())
    }

    /// The seed list the sweep runs.
    pub fn seed_list(&self) -> Vec<u64> {
        (0..self.seeds).map(|k| self.seed_base + k).collect()
    }
}

fn parse_num(s: &str) -> Result<f64, String> {
    s.parse::<f64>()
        .map_err(|_| format!("expected a number, got `{s}`"))
        .and_then(|x| {
            if x.is_finite() {
                Ok(x)
            } else {
                Err(format!("expected a finite number, got `{s}`"))
            }
        })
}

fn parse_int(s: &str) -> Result<usize, String> {
    s.parse::<usize>()
        .map_err(|_| format!("expected a nonnegative integer, got `{s}`"))
}

fn parse_network(words: &[&str]) -> Result<FabricSpec, String> {
    let usage = "network = crossbar N | clos-strict N R | clos-rearr N R | benes K | ftn NU WIDTH DEGREE GAMMA";
    let int = |s: &str| parse_int(s);
    match words {
        ["crossbar", n] => Ok(FabricSpec::Crossbar(int(n)?.max(1))),
        ["clos-strict", n, r] => Ok(FabricSpec::ClosStrict(int(n)?.max(1), int(r)?.max(1))),
        ["clos-rearr", n, r] => Ok(FabricSpec::ClosRearrangeable(
            int(n)?.max(1),
            int(r)?.max(1),
        )),
        ["benes", k] => Ok(FabricSpec::Benes(int(k)?.clamp(1, 16) as u32)),
        ["ftn", nu, w, d, g] => Ok(FabricSpec::Ftn(
            int(nu)?.clamp(1, 8) as u32,
            int(w)?,
            int(d)?,
            parse_num(g)?,
        )),
        _ => Err(format!(
            "unrecognised network `{}`; {usage}",
            words.join(" ")
        )),
    }
}

fn parse_pattern(words: &[&str]) -> Result<TrafficPattern, String> {
    let usage =
        "pattern = uniform | permutation | hotspot FRAC P_HOT | bursty MEAN_ON MEAN_OFF BOOST";
    match words {
        ["uniform"] => Ok(TrafficPattern::Uniform),
        ["permutation"] => Ok(TrafficPattern::Permutation),
        ["hotspot", f, p] => Ok(TrafficPattern::Hotspot {
            hot_fraction: parse_num(f)?,
            p_hot: parse_num(p)?,
        }),
        ["bursty", on, off, boost] => Ok(TrafficPattern::Bursty {
            mean_on: parse_num(on)?,
            mean_off: parse_num(off)?,
            boost: parse_num(boost)?,
        }),
        _ => Err(format!(
            "unrecognised pattern `{}`; {usage}",
            words.join(" ")
        )),
    }
}

fn parse_holding(words: &[&str]) -> Result<HoldingTime, String> {
    let usage = "holding = exp MEAN | pareto SHAPE MEAN";
    match words {
        ["exp", mean] => Ok(HoldingTime::Exponential {
            mean: parse_num(mean)?,
        }),
        ["pareto", shape, mean] => Ok(HoldingTime::Pareto {
            shape: parse_num(shape)?,
            mean: parse_num(mean)?,
        }),
        _ => Err(format!(
            "unrecognised holding `{}`; {usage}",
            words.join(" ")
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# comment line
network = clos-strict 2 3   # trailing comment
pattern = hotspot 0.25 0.8
holding = pareto 2.5 1.5
arrival_rate = 4
fault_rate = 0.001
mttr = 10
duration = 200
warmup = 20
seeds = 4
seed_base = 7
buckets = 8
threads = 2
";

    #[test]
    fn parses_a_full_scenario() {
        let s = Scenario::parse(GOOD).unwrap();
        assert_eq!(s.fabric, FabricSpec::ClosStrict(2, 3));
        assert_eq!(
            s.config.pattern,
            TrafficPattern::Hotspot {
                hot_fraction: 0.25,
                p_hot: 0.8
            }
        );
        assert_eq!(
            s.config.holding,
            HoldingTime::Pareto {
                shape: 2.5,
                mean: 1.5
            }
        );
        assert_eq!(s.config.arrival_rate, 4.0);
        assert_eq!(s.config.warmup, 20.0);
        assert_eq!(s.seed_list(), vec![7, 8, 9, 10]);
        assert_eq!(s.threads, 2);
        assert_eq!(s.fabric.to_spec_string(), "clos-strict 2 3");
    }

    #[test]
    fn defaults_fill_in() {
        let s = Scenario::parse("network = benes 3\n").unwrap();
        assert_eq!(s.fabric, FabricSpec::Benes(3));
        assert_eq!(s.config.pattern, TrafficPattern::Uniform);
        assert_eq!(s.config.fault_rate, 0.0);
        assert_eq!(s.seeds, 1);
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let err = Scenario::parse("network = clos-strict 2 2\nbogus_key = 1\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = Scenario::parse("network = hypercube 4\n").unwrap_err();
        assert!(err.contains("unrecognised network"), "{err}");
        let err = Scenario::parse("pattern = uniform\n").unwrap_err();
        assert!(err.contains("must set `network"), "{err}");
    }

    #[test]
    fn validation_rejects_nonsense() {
        let bad = [
            "network = clos-strict 2 2\narrival_rate = 0\n",
            "network = clos-strict 2 2\nholding = pareto 0.9 1\n",
            "network = clos-strict 2 2\nduration = 100\nwarmup = 100\n",
            "network = clos-strict 2 2\nseeds = 0\n",
            "network = clos-strict 2 2\nfault_open_share = 1.5\n",
            "network = crossbar 4\nfault_rate = 0.01\n",
            "network = clos-strict 2 2\npattern = bursty 1 1 0.5\n",
        ];
        for text in bad {
            assert!(Scenario::parse(text).is_err(), "accepted: {text}");
        }
    }

    #[test]
    fn specs_build_their_fabrics() {
        for (text, terminals) in [
            ("network = crossbar 4\n", 4),
            ("network = clos-strict 2 3\n", 6),
            ("network = clos-rearr 2 2\n", 4),
            ("network = benes 2\n", 4),
        ] {
            let s = Scenario::parse(text).unwrap();
            assert_eq!(s.fabric.build().terminals(), terminals, "{text}");
        }
    }
}
