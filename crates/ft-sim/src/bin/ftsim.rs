//! `ftsim` — run a plain-text scenario through the discrete-event
//! engine and emit a JSON report.
//!
//! ```text
//! usage: ftsim SCENARIO [--out PATH] [--threads N] [--trace FILE]
//!              [--export-stream FILE] [--profile]
//!
//!   SCENARIO      path to a scenario spec (`-` reads stdin)
//!   --out PATH    also write the JSON report to PATH
//!   --threads N   override the scenario's worker count
//!   --trace FILE  write the deterministic NDJSON event trace to FILE
//!   --export-stream FILE  write the first seed's replayable workload
//!                 stream (NDJSON, see `ft_sim::stream`) for `ftserve-replay`
//!   --profile     print per-phase wall-clock and kernel counters to stderr
//! ```
//!
//! The report goes to stdout; diagnostics go to stderr. Exit status is
//! nonzero on any parse or I/O error. See `ft_sim::scenario` for the
//! spec format.

use std::io::Read;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: ftsim SCENARIO [--out PATH] [--threads N] [--trace FILE] [--export-stream FILE] [--profile]\n       (SCENARIO = path to a spec file, or `-` for stdin)"
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scenario_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut threads_override: Option<usize> = None;
    let mut trace_path: Option<String> = None;
    let mut stream_path: Option<String> = None;
    let mut profile = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(());
            }
            "--out" => {
                out_path = Some(it.next().ok_or("--out needs a path")?);
            }
            "--threads" => {
                let n = it.next().ok_or("--threads needs a count")?;
                threads_override = Some(n.parse().map_err(|_| format!("bad thread count `{n}`"))?);
            }
            "--trace" => {
                trace_path = Some(it.next().ok_or("--trace needs a path")?);
            }
            "--export-stream" => {
                stream_path = Some(it.next().ok_or("--export-stream needs a path")?);
            }
            "--profile" => profile = true,
            other if scenario_path.is_none() => scenario_path = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`\n{}", usage())),
        }
    }
    let scenario_path = scenario_path.ok_or_else(|| usage().to_string())?;
    let text = if scenario_path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(&scenario_path)
            .map_err(|e| format!("reading {scenario_path}: {e}"))?
    };

    let mut prof = ft_obs::Profiler::new(profile);
    let mut scenario = prof.section("parse", || ft_sim::Scenario::parse(&text))?;
    if let Some(t) = threads_override {
        scenario.threads = t;
    }
    let fabric = prof.section("build", || scenario.fabric.build());
    eprintln!(
        "ftsim: {} ({} switches, {} terminals), {} seed(s), duration {}",
        fabric.label(),
        fabric.net().size(),
        fabric.terminals(),
        scenario.seeds,
        scenario.config.duration,
    );
    let seeds = scenario.seed_list();
    if let Some(path) = &stream_path {
        // The replayable stream of the sweep's first seed, rendered
        // before the sweep so `--export-stream` works even on scenarios
        // too heavy to simulate here.
        let stream = ft_sim::stream::export_stream(&scenario, seeds[0]);
        let ndjson = ft_sim::stream::render_ndjson(&stream);
        ft_obs::write_atomic(path, &ndjson).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!(
            "ftsim: stream written to {path} ({} events, seed {})",
            stream.len(),
            seeds[0]
        );
    }
    let mut trace: Option<String> = None;
    let outcomes = prof.section("sweep", || {
        if trace_path.is_some() {
            let (outcomes, t) =
                ft_sim::run_sweep_traced(&fabric, &scenario.config, &seeds, scenario.threads);
            trace = Some(t);
            outcomes
        } else {
            ft_sim::run_sweep(&fabric, &scenario.config, &seeds, scenario.threads)
        }
    });
    let mut kernel = ft_graph::KernelStats::default();
    for o in &outcomes {
        kernel.merge(&o.kernel);
    }
    let report = ft_sim::Report::new(scenario, &fabric, outcomes);
    let json = prof.section("render", || report.to_json());
    print!("{json}");
    if let Some(path) = out_path {
        // Temp sibling + rename: an interrupted run must never leave a
        // torn report that downstream tooling half-parses.
        ft_obs::write_atomic(&path, &json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("ftsim: report written to {path}");
    }
    if let (Some(path), Some(trace)) = (&trace_path, &trace) {
        ft_obs::write_atomic(path, trace).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!(
            "ftsim: trace written to {path} ({} lines)",
            trace.lines().count()
        );
    }
    if profile {
        for line in prof.lines() {
            eprintln!("ftsim: {line}");
        }
        let counters = ft_obs::KvLine::new("kernel counters")
            .kv("bibfs_pops", kernel.bibfs_pops)
            .kv("sliced_pops", kernel.sliced_pops)
            .kv("sliced_lane_decisions", kernel.sliced_lane_decisions)
            .kv("epoch_resets", kernel.epoch_resets)
            .finish();
        eprintln!("ftsim: {counters}");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ftsim: {e}");
            ExitCode::FAILURE
        }
    }
}
