//! Pluggable workload generators: who calls whom, how often, for how
//! long.
//!
//! Arrivals form a network-wide Poisson process (rate `arrival_rate`
//! calls per time unit), optionally modulated by an on/off burst phase
//! (a two-state MMPP). Each arrival draws a source/destination terminal
//! pair from a [`TrafficPattern`] and a holding time from a
//! [`HoldingTime`] distribution. All draws go through the single engine
//! RNG, in event order, so a seed pins the entire workload.

use rand::rngs::SmallRng;
use rand::Rng;

/// Draws an `Exp(mean)` holding/interarrival time. `1 - u` keeps the
/// argument of `ln` in `(0, 1]`, so the draw is finite and nonnegative.
pub fn exp_draw(rng: &mut SmallRng, mean: f64) -> f64 {
    let u: f64 = rng.random();
    -mean * (1.0 - u).ln()
}

/// Call holding-time distributions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum HoldingTime {
    /// Exponential with the given mean — the classical telephone model
    /// (and the memoryless case Erlang B assumes… though Erlang B is in
    /// fact insensitive to the distribution beyond its mean).
    Exponential {
        /// Mean holding time.
        mean: f64,
    },
    /// Pareto (heavy-tailed) with `shape > 1` and the given mean:
    /// scale is derived as `mean · (shape − 1) / shape`.
    Pareto {
        /// Tail index α (must exceed 1 for a finite mean).
        shape: f64,
        /// Mean holding time.
        mean: f64,
    },
}

impl HoldingTime {
    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        match *self {
            HoldingTime::Exponential { mean } | HoldingTime::Pareto { mean, .. } => mean,
        }
    }

    /// Samples one holding time.
    pub fn sample(&self, rng: &mut SmallRng) -> f64 {
        match *self {
            HoldingTime::Exponential { mean } => exp_draw(rng, mean),
            HoldingTime::Pareto { shape, mean } => {
                let scale = mean * (shape - 1.0) / shape;
                let u: f64 = rng.random();
                // Inverse CDF; 1 - u in (0, 1] keeps the power finite.
                scale * (1.0 - u).powf(-1.0 / shape)
            }
        }
    }
}

/// Who calls whom.
#[derive(Clone, Debug, PartialEq)]
pub enum TrafficPattern {
    /// Source and destination independently uniform over the terminals.
    Uniform,
    /// A fixed permutation π sampled once per seed: every call from
    /// input `i` targets output `π(i)` (`i` uniform). The paper's
    /// rearrangeable workload, served as churn.
    Permutation,
    /// Uniform sources; destinations hit the first
    /// `ceil(hot_fraction · n)` outputs with probability `p_hot`,
    /// uniform otherwise.
    Hotspot {
        /// Fraction of outputs forming the hot set, in `(0, 1]`.
        hot_fraction: f64,
        /// Probability an arrival targets the hot set.
        p_hot: f64,
    },
    /// Uniform pairs, but the Poisson arrival rate is modulated by an
    /// on/off phase process: `Exp(mean_off)` quiet phases at the base
    /// rate alternating with `Exp(mean_on)` bursts at `boost ×` the
    /// base rate.
    Bursty {
        /// Mean duration of a burst phase.
        mean_on: f64,
        /// Mean duration of a quiet phase.
        mean_off: f64,
        /// Arrival-rate multiplier during bursts (≥ 1).
        boost: f64,
    },
}

impl TrafficPattern {
    /// Draws a `(source index, destination index)` terminal pair for a
    /// network with `n` inputs and `n` outputs. `perm` is the per-seed
    /// permutation (used only by [`TrafficPattern::Permutation`]).
    pub fn sample_pair(&self, rng: &mut SmallRng, n: usize, perm: &[u32]) -> (usize, usize) {
        match *self {
            TrafficPattern::Uniform | TrafficPattern::Bursty { .. } => {
                (rng.random_range(0..n), rng.random_range(0..n))
            }
            TrafficPattern::Permutation => {
                let i = rng.random_range(0..n);
                (i, perm[i] as usize)
            }
            TrafficPattern::Hotspot {
                hot_fraction,
                p_hot,
            } => {
                let i = rng.random_range(0..n);
                let hot = ((hot_fraction * n as f64).ceil() as usize).clamp(1, n);
                let o = if rng.random::<f64>() < p_hot {
                    rng.random_range(0..hot)
                } else {
                    rng.random_range(0..n)
                };
                (i, o)
            }
        }
    }

    /// The burst parameters, if this pattern modulates the arrival rate.
    pub fn burst_params(&self) -> Option<(f64, f64, f64)> {
        match *self {
            TrafficPattern::Bursty {
                mean_on,
                mean_off,
                boost,
            } => Some((mean_on, mean_off, boost)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_graph::gen::rng;

    #[test]
    fn exp_draw_has_right_mean() {
        let mut r = rng(1);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| exp_draw(&mut r, 2.5)).sum();
        assert!((total / n as f64 - 2.5).abs() < 0.1);
    }

    #[test]
    fn holding_means_calibrate() {
        let mut r = rng(2);
        for dist in [
            HoldingTime::Exponential { mean: 1.5 },
            HoldingTime::Pareto {
                shape: 2.5,
                mean: 1.5,
            },
        ] {
            let n = 40_000;
            let total: f64 = (0..n).map(|_| dist.sample(&mut r)).sum();
            let mean = total / n as f64;
            assert!((mean - 1.5).abs() < 0.15, "{dist:?} mean {mean}");
            assert_eq!(dist.mean(), 1.5);
        }
    }

    #[test]
    fn pareto_is_heavier_tailed_than_exponential() {
        let mut r = rng(3);
        let exp = HoldingTime::Exponential { mean: 1.0 };
        let par = HoldingTime::Pareto {
            shape: 1.5,
            mean: 1.0,
        };
        let n = 50_000;
        let tail = |d: &HoldingTime, r: &mut _| (0..n).filter(|_| d.sample(r) > 8.0).count();
        let e_tail = tail(&exp, &mut r);
        let p_tail = tail(&par, &mut r);
        assert!(
            p_tail > 2 * e_tail,
            "exp tail {e_tail}, pareto tail {p_tail}"
        );
    }

    #[test]
    fn permutation_pattern_is_a_function() {
        let mut r = rng(4);
        let perm = vec![2u32, 0, 3, 1];
        for _ in 0..100 {
            let (i, o) = TrafficPattern::Permutation.sample_pair(&mut r, 4, &perm);
            assert_eq!(o, perm[i] as usize);
        }
    }

    #[test]
    fn hotspot_concentrates_destinations() {
        let mut r = rng(5);
        let pat = TrafficPattern::Hotspot {
            hot_fraction: 0.25,
            p_hot: 0.8,
        };
        let n = 8; // hot set = {0, 1}
        let hits = (0..10_000)
            .filter(|_| pat.sample_pair(&mut r, n, &[]).1 < 2)
            .count();
        // P(dst in hot set) = 0.8 + 0.2 * 2/8 = 0.85
        assert!((hits as f64 / 10_000.0 - 0.85).abs() < 0.02, "hits {hits}");
    }

    #[test]
    fn uniform_covers_all_pairs() {
        let mut r = rng(6);
        let mut seen = [[false; 3]; 3];
        for _ in 0..500 {
            let (i, o) = TrafficPattern::Uniform.sample_pair(&mut r, 3, &[]);
            seen[i][o] = true;
        }
        assert!(seen.iter().flatten().all(|&s| s));
    }
}
