//! Pluggable fault-injection processes.
//!
//! The paper's analysis — and the engine's original fault loop — assumes
//! switches fail independently at a per-switch exponential rate. Real
//! fabrics also die in *correlated* ways: a power domain takes out a
//! whole middle-stage group, a firmware push sweeps a cluster of
//! adjacent switches, an adversary aims at the switches carrying the
//! most circuits. The [`FaultInjector`] trait abstracts *which switch
//! fails next and when*, while the engine keeps ownership of everything
//! downstream of a strike (repair mask, kills, reroutes, repairs), so
//! every process rides the same deterministic `(time, seq)` event
//! discipline.
//!
//! Contract: the engine calls [`FaultInjector::next_fault`] once at
//! `t = 0` and again after every fault or repair event, invalidating
//! the previously scheduled draw through its epoch guard (so a process
//! may either redraw — exact for the memoryless i.i.d. process — or
//! return a remembered schedule). When a scheduled fault fires, the
//! engine calls [`FaultInjector::strike`] to pick the victim. All
//! randomness flows through the engine's single seeded RNG in event
//! order, which is what keeps event streams byte-reproducible per seed.
//!
//! Four processes are provided, selected by [`FaultSpec`]:
//!
//! * [`FaultSpec::Iid`] — the original aggregate process,
//!   next-failure ~ `Exp(healthy · fault_rate)` with a uniformly random
//!   healthy victim. Byte-identical to the pre-trait engine (pinned by
//!   the golden fingerprints in `tests/determinism.rs`).
//! * [`FaultSpec::Storm`] — group storms: at Poisson storm arrivals,
//!   every healthy switch leaving one stage (configured or uniformly
//!   random) fails, the strikes spread evenly over a short window.
//! * [`FaultSpec::Burst`] — spatially correlated bursts: a uniformly
//!   random healthy seed switch plus its BFS neighborhood (switches
//!   sharing a vertex, i.e. stage-adjacent) up to a configured cluster
//!   size, spread over a window.
//! * [`FaultSpec::Targeted`] — a greedy max-damage adversary: at each
//!   Poisson attack it scans the healthy switches and fails the one
//!   whose discard kills the most live circuits (tie-broken by how many
//!   alive internal endpoints it discards, then by lowest switch id —
//!   computed from the incremental alive mask and the router's
//!   vertex→session owner index).
//!
//! The reaction side — what the engine does with the calls a strike
//! kills — is configured independently by [`RetryPolicy`].

use crate::engine::SimConfig;
use crate::fabric::Fabric;
use crate::workload::exp_draw;
use ft_failure::{FailureInstance, SwitchState};
use ft_graph::{Digraph, EdgeId, StagedNetwork};
use ft_networks::{CircuitRouter, SessionId};
use rand::rngs::SmallRng;
use rand::Rng;

/// Which fault-injection process drives a run.
///
/// Parsed from the scenario directive
/// `faults = iid | storm RATE WINDOW [STAGE] | burst RATE SIZE WINDOW |
/// targeted RATE`; see the module docs for what each process does. The
/// non-i.i.d. processes carry their own intensity (`RATE` = expected
/// episodes per time unit) and require `fault_rate = 0` — the scenario
/// validator enforces the split so a sweep never superposes two
/// processes by accident.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultSpec {
    /// Independent per-switch exponential failures at `fault_rate`
    /// (the default; the paper's model).
    Iid,
    /// Group storms: whole-stage sweeps at Poisson rate `rate`.
    Storm {
        /// Storm arrivals per time unit.
        rate: f64,
        /// Strikes of one storm spread evenly over this span.
        window: f64,
        /// Victim stage (tail stage of the killed switches); `None`
        /// picks a random internal stage per storm.
        stage: Option<usize>,
    },
    /// Spatially correlated bursts: seed + BFS cluster of
    /// vertex-adjacent switches.
    Burst {
        /// Burst arrivals per time unit.
        rate: f64,
        /// Cluster size (healthy switches per burst, including seed).
        size: usize,
        /// Strikes of one burst spread evenly over this span.
        window: f64,
    },
    /// Greedy max-damage adversary at Poisson rate `rate`.
    Targeted {
        /// Attacks per time unit.
        rate: f64,
    },
}

impl FaultSpec {
    /// Whether this spec is the i.i.d. baseline process.
    pub fn is_iid(&self) -> bool {
        matches!(self, FaultSpec::Iid)
    }

    /// Whether the process can produce any fault at all (drives the
    /// engine's fault-capability assertion and the scenario validator).
    pub fn active(&self, fault_rate: f64) -> bool {
        match self {
            FaultSpec::Iid => fault_rate > 0.0,
            _ => true,
        }
    }

    /// The spec as it appears in scenario text (the parser's inverse;
    /// `ftexp` hashes this into cell cache keys).
    pub fn to_spec_string(&self) -> String {
        match *self {
            FaultSpec::Iid => "iid".into(),
            FaultSpec::Storm {
                rate,
                window,
                stage: None,
            } => format!("storm {rate} {window}"),
            FaultSpec::Storm {
                rate,
                window,
                stage: Some(s),
            } => format!("storm {rate} {window} {s}"),
            FaultSpec::Burst { rate, size, window } => format!("burst {rate} {size} {window}"),
            FaultSpec::Targeted { rate } => format!("targeted {rate}"),
        }
    }

    /// Instantiates the injector for one seed's run.
    pub fn build(&self, cfg: &SimConfig, fabric: &Fabric) -> Box<dyn FaultInjector> {
        let open_share = cfg.fault_open_share;
        match *self {
            FaultSpec::Iid => Box::new(IidExp {
                rate: cfg.fault_rate,
                open_share,
            }),
            FaultSpec::Storm {
                rate,
                window,
                stage,
            } => Box::new(GroupStorm {
                rate,
                window,
                stage,
                open_share,
                next_start: None,
                victims: Vec::new(),
                cursor: 0,
            }),
            FaultSpec::Burst { rate, size, window } => Box::new(SpatialBurst {
                rate,
                size: size.max(1),
                window,
                open_share,
                next_start: None,
                victims: Vec::new(),
                cursor: 0,
            }),
            FaultSpec::Targeted { rate } => {
                let g = fabric.net();
                let mut is_terminal = vec![false; g.num_vertices()];
                for &t in g.inputs().iter().chain(g.outputs()) {
                    is_terminal[t.index()] = true;
                }
                Box::new(Targeted {
                    rate,
                    open_share,
                    next_start: None,
                    is_terminal,
                })
            }
        }
    }
}

/// How the engine reacts to calls killed by a fault — the degradation
/// ladder.
///
/// Parsed from `retry = on-repair | budget N backoff BASE [shed DEPTH]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RetryPolicy {
    /// The original policy (the default): one immediate reroute
    /// attempt, then the call waits in the pending queue and retries at
    /// every repair completion until it reroutes or its hangup deadline
    /// expires.
    OnRepair,
    /// Deterministic exponential backoff with admission shedding: one
    /// immediate attempt, then up to `budget` retries at delays
    /// `base, 2·base, 4·base, …`; repairs do *not* trigger retries.
    /// When a kill arrives while the waiting-reroute queue already
    /// holds `shed_depth` calls (storm overload), the call is shed
    /// immediately instead of queued.
    Backoff {
        /// Retry attempts after the immediate one (0 = immediate only).
        budget: u32,
        /// First backoff delay; each further retry doubles it.
        base: f64,
        /// Queue depth that triggers admission shedding (0 = never).
        shed_depth: usize,
    },
}

impl RetryPolicy {
    /// The policy as it appears in scenario text (the parser's inverse).
    pub fn to_spec_string(&self) -> String {
        match *self {
            RetryPolicy::OnRepair => "on-repair".into(),
            RetryPolicy::Backoff {
                budget,
                base,
                shed_depth: 0,
            } => format!("budget {budget} backoff {base}"),
            RetryPolicy::Backoff {
                budget,
                base,
                shed_depth,
            } => format!("budget {budget} backoff {base} shed {shed_depth}"),
        }
    }
}

/// How the engine replaces the circuits a strike kills — the placement
/// planner for the kill-time reroute wave.
///
/// Parsed from `reroute = greedy | mincost`. Orthogonal to
/// [`RetryPolicy`], which decides *when* further attempts happen;
/// this decides *how* the batch of victims dying at one strike is
/// placed back onto the fabric.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RerouteMode {
    /// The original policy (the default): victims are rerouted one at a
    /// time in kill order, each by an independent shortest-path search
    /// over whatever capacity the previous victims left behind.
    #[default]
    Greedy,
    /// Minimal-disruption batch placement: one min-cost-flow network is
    /// built over the idle fabric per kill wave and each victim is
    /// placed by a successive-shortest-path augmentation (cost = fabric
    /// vertices occupied), so no reroute is *executed* unless a
    /// placement exists — failed probing never touches the fabric.
    Mincost,
}

impl RerouteMode {
    /// The mode as it appears in scenario text (the parser's inverse;
    /// `ftexp` hashes this into cell cache keys).
    pub fn to_spec_string(&self) -> &'static str {
        match self {
            RerouteMode::Greedy => "greedy",
            RerouteMode::Mincost => "mincost",
        }
    }
}

/// Read-only view of engine state an injector may consult when drawing
/// schedules or choosing victims.
pub struct InjectCtx<'a, 'n> {
    /// The staged network under simulation.
    pub net: &'a StagedNetwork,
    /// Cumulative switch failure states.
    pub inst: &'a FailureInstance,
    /// The incrementally maintained §4 routable alive-mask.
    pub alive: &'a [bool],
    /// The router (owner index: which session crosses a vertex).
    pub router: &'a CircuitRouter<'n>,
    /// Number of currently healthy switches.
    pub healthy: usize,
}

/// One fault the process wants to land *now*.
pub struct Strike {
    /// The victim switch (guaranteed healthy at strike time).
    pub edge: EdgeId,
    /// Failure mode (open or closed).
    pub state: SwitchState,
    /// Whether this strike opens a new fault episode (a storm/burst
    /// start, a targeted attack, or — for the i.i.d. process — every
    /// fault). Drives the `storms` recovery metric.
    pub new_episode: bool,
}

/// A fault process behind the engine's deterministic event discipline.
///
/// Implementations must draw randomness only from the `rng` handed in,
/// and only inside these two calls — the engine invokes them at fixed
/// points of the event order, which is what makes every process
/// byte-reproducible per seed and independent of sweep thread count.
pub trait FaultInjector {
    /// Absolute time of the next fault, or `None` if the process is
    /// currently inert. Called at `t = 0` and after every fault/repair
    /// event; the engine discards the previous answer (epoch guard), so
    /// a remembered schedule must be returned again, clamped to `now`.
    fn next_fault(&mut self, now: f64, ctx: &InjectCtx<'_, '_>, rng: &mut SmallRng) -> Option<f64>;

    /// Chooses the victim for a fault event firing at `now`, or `None`
    /// to skip (e.g. a storm whose target group has no healthy switch).
    fn strike(&mut self, now: f64, ctx: &InjectCtx<'_, '_>, rng: &mut SmallRng) -> Option<Strike>;
}

/// Uniformly random healthy switch (rejection sampling with a
/// deterministic linear-scan fallback).
///
/// # Panics
/// Panics if no switch is healthy — callers guard on `healthy > 0`.
pub(crate) fn pick_healthy_edge(inst: &FailureInstance, rng: &mut SmallRng) -> EdgeId {
    let m = inst.len();
    for _ in 0..128 {
        let e = EdgeId::from(rng.random_range(0..m));
        if inst.is_normal(e) {
            return e;
        }
    }
    let start = rng.random_range(0..m);
    for k in 0..m {
        let e = EdgeId::from((start + k) % m);
        if inst.is_normal(e) {
            return e;
        }
    }
    unreachable!("pick_healthy_edge called with no healthy switch");
}

fn draw_state(open_share: f64, rng: &mut SmallRng) -> SwitchState {
    if rng.random::<f64>() < open_share {
        SwitchState::Open
    } else {
        SwitchState::Closed
    }
}

/// The original aggregate i.i.d. process: next-failure ~
/// `Exp(healthy · rate)` (exact superposition, redrawn after every
/// healthy-count change — valid by memorylessness), uniformly random
/// healthy victim. RNG call-for-call identical to the pre-trait engine.
struct IidExp {
    rate: f64,
    open_share: f64,
}

impl FaultInjector for IidExp {
    fn next_fault(&mut self, now: f64, ctx: &InjectCtx<'_, '_>, rng: &mut SmallRng) -> Option<f64> {
        if self.rate > 0.0 && ctx.healthy > 0 {
            let mean = 1.0 / (ctx.healthy as f64 * self.rate);
            Some(now + exp_draw(rng, mean))
        } else {
            None
        }
    }

    fn strike(&mut self, _now: f64, ctx: &InjectCtx<'_, '_>, rng: &mut SmallRng) -> Option<Strike> {
        let edge = pick_healthy_edge(ctx.inst, rng);
        Some(Strike {
            edge,
            state: draw_state(self.open_share, rng),
            new_episode: true,
        })
    }
}

/// Shared scaffolding for episode processes (storms and bursts): a
/// remembered Poisson arrival for the next episode start, plus a queue
/// of pre-scheduled `(time, victim)` strikes for the one in progress.
/// `next_fault` answers from the queue first; the arrival draw happens
/// at most once per episode (the rate is fixed, so — unlike the
/// i.i.d. superposition — nothing is redrawn on healthy-count changes).
fn episode_next_fault(
    now: f64,
    rate: f64,
    next_start: &mut Option<f64>,
    victims: &[(f64, EdgeId)],
    cursor: usize,
    rng: &mut SmallRng,
) -> Option<f64> {
    if let Some(&(t, _)) = victims.get(cursor) {
        // Clamp: a stale-guard round trip may re-ask after `t` passed.
        return Some(t.max(now));
    }
    if rate <= 0.0 {
        return None;
    }
    let t = *next_start.get_or_insert_with(|| now + exp_draw(rng, 1.0 / rate));
    Some(t.max(now))
}

/// Spreads `group` over `[now, now + window]` as the strike queue and
/// returns the first strike (landing immediately).
fn begin_episode(
    now: f64,
    window: f64,
    group: &[EdgeId],
    victims: &mut Vec<(f64, EdgeId)>,
    cursor: &mut usize,
    open_share: f64,
    rng: &mut SmallRng,
) -> Option<Strike> {
    victims.clear();
    *cursor = 0;
    let first = *group.first()?;
    let k = group.len();
    for (i, &e) in group.iter().enumerate().skip(1) {
        victims.push((now + window * i as f64 / k as f64, e));
    }
    Some(Strike {
        edge: first,
        state: draw_state(open_share, rng),
        new_episode: true,
    })
}

/// Group storms: at each Poisson arrival every healthy switch leaving
/// one stage fails within `window`.
struct GroupStorm {
    rate: f64,
    window: f64,
    stage: Option<usize>,
    open_share: f64,
    next_start: Option<f64>,
    victims: Vec<(f64, EdgeId)>,
    cursor: usize,
}

impl FaultInjector for GroupStorm {
    fn next_fault(
        &mut self,
        now: f64,
        _ctx: &InjectCtx<'_, '_>,
        rng: &mut SmallRng,
    ) -> Option<f64> {
        episode_next_fault(
            now,
            self.rate,
            &mut self.next_start,
            &self.victims,
            self.cursor,
            rng,
        )
    }

    fn strike(&mut self, now: f64, ctx: &InjectCtx<'_, '_>, rng: &mut SmallRng) -> Option<Strike> {
        if let Some(&(_, e)) = self.victims.get(self.cursor) {
            self.cursor += 1;
            // A victim scheduled healthy can only have changed state by
            // being repaired mid-storm (repairs re-heal, never fail), so
            // it is still strikeable; the guard is belt-and-braces.
            if !ctx.inst.is_normal(e) {
                return None;
            }
            return Some(Strike {
                edge: e,
                state: draw_state(self.open_share, rng),
                new_episode: false,
            });
        }
        self.next_start = None;
        let stages = ctx.net.num_stages();
        // Victim stages are tail stages of switches: 0..stages-1. The
        // random pick sticks to internal stages (a "middle-stage group")
        // when the fabric has any.
        let s = match self.stage {
            Some(s) => s.min(stages.saturating_sub(2)),
            None => {
                if stages >= 3 {
                    rng.random_range(1..stages - 1)
                } else {
                    0
                }
            }
        };
        let mut group: Vec<EdgeId> = Vec::new();
        for v in ctx.net.stage_vertices(s) {
            for &e in ctx.net.out_edge_slice(v) {
                if ctx.inst.is_normal(e) {
                    group.push(e);
                }
            }
        }
        begin_episode(
            now,
            self.window,
            &group,
            &mut self.victims,
            &mut self.cursor,
            self.open_share,
            rng,
        )
    }
}

/// Spatially correlated bursts: a uniformly random healthy seed switch
/// plus its BFS cluster of vertex-adjacent healthy switches, up to
/// `size`, within `window`.
struct SpatialBurst {
    rate: f64,
    size: usize,
    window: f64,
    open_share: f64,
    next_start: Option<f64>,
    victims: Vec<(f64, EdgeId)>,
    cursor: usize,
}

impl FaultInjector for SpatialBurst {
    fn next_fault(
        &mut self,
        now: f64,
        _ctx: &InjectCtx<'_, '_>,
        rng: &mut SmallRng,
    ) -> Option<f64> {
        episode_next_fault(
            now,
            self.rate,
            &mut self.next_start,
            &self.victims,
            self.cursor,
            rng,
        )
    }

    fn strike(&mut self, now: f64, ctx: &InjectCtx<'_, '_>, rng: &mut SmallRng) -> Option<Strike> {
        if let Some(&(_, e)) = self.victims.get(self.cursor) {
            self.cursor += 1;
            if !ctx.inst.is_normal(e) {
                return None;
            }
            return Some(Strike {
                edge: e,
                state: draw_state(self.open_share, rng),
                new_episode: false,
            });
        }
        self.next_start = None;
        if ctx.healthy == 0 {
            return None;
        }
        let seed = pick_healthy_edge(ctx.inst, rng);
        // BFS over switch adjacency (switches sharing a vertex), seeded
        // at `seed`, collecting healthy switches in deterministic
        // discovery order. Failed switches still conduct adjacency —
        // the cluster is spatial, not health-dependent.
        let g = ctx.net;
        let mut visited = vec![false; g.num_edges()];
        visited[seed.index()] = true;
        let mut group = vec![seed];
        let mut frontier = 0;
        while frontier < group.len() && group.len() < self.size {
            let e = group[frontier];
            frontier += 1;
            let (t, h) = g.endpoints(e);
            'scan: for v in [t, h] {
                for &e2 in g.out_edge_slice(v).iter().chain(g.in_edge_slice(v)) {
                    if !visited[e2.index()] {
                        visited[e2.index()] = true;
                        if ctx.inst.is_normal(e2) {
                            group.push(e2);
                            if group.len() == self.size {
                                break 'scan;
                            }
                        }
                    }
                }
            }
        }
        begin_episode(
            now,
            self.window,
            &group,
            &mut self.victims,
            &mut self.cursor,
            self.open_share,
            rng,
        )
    }
}

/// Greedy max-damage adversary: scans every healthy switch and fails
/// the one killing the most live circuits.
struct Targeted {
    rate: f64,
    open_share: f64,
    next_start: Option<f64>,
    is_terminal: Vec<bool>,
}

impl FaultInjector for Targeted {
    fn next_fault(
        &mut self,
        now: f64,
        _ctx: &InjectCtx<'_, '_>,
        rng: &mut SmallRng,
    ) -> Option<f64> {
        if self.rate <= 0.0 {
            return None;
        }
        let t = *self
            .next_start
            .get_or_insert_with(|| now + exp_draw(rng, 1.0 / self.rate));
        Some(t.max(now))
    }

    fn strike(&mut self, _now: f64, ctx: &InjectCtx<'_, '_>, rng: &mut SmallRng) -> Option<Strike> {
        self.next_start = None;
        let g = ctx.net;
        // Damage of failing switch e: how many live circuits cross the
        // internal endpoints its discard would newly kill (each vertex
        // carries at most one circuit, so the score is 0..=2), then how
        // many alive internal endpoints it discards (mask impact), then
        // lowest id. First-win keeps ties deterministic.
        let mut best: Option<(u32, u32, EdgeId)> = None;
        for i in 0..g.num_edges() {
            let e = EdgeId::from(i);
            if !ctx.inst.is_normal(e) {
                continue;
            }
            let (t, h) = g.endpoints(e);
            let mut circuits = 0u32;
            let mut discards = 0u32;
            let mut seen: Option<SessionId> = None;
            for v in [t, h] {
                if self.is_terminal[v.index()] || !ctx.alive[v.index()] {
                    continue;
                }
                discards += 1;
                if let Some(id) = ctx.router.session_through(v) {
                    if seen != Some(id) {
                        circuits += 1;
                        seen = Some(id);
                    }
                }
            }
            if best.is_none_or(|(c, d, _)| (circuits, discards) > (c, d)) {
                best = Some((circuits, discards, e));
            }
        }
        let (_, _, edge) = best?;
        Some(Strike {
            edge,
            state: draw_state(self.open_share, rng),
            new_episode: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_strings_round_trip_the_parser_grammar() {
        for (spec, text) in [
            (FaultSpec::Iid, "iid"),
            (
                FaultSpec::Storm {
                    rate: 0.5,
                    window: 2.0,
                    stage: None,
                },
                "storm 0.5 2",
            ),
            (
                FaultSpec::Storm {
                    rate: 0.5,
                    window: 2.0,
                    stage: Some(3),
                },
                "storm 0.5 2 3",
            ),
            (
                FaultSpec::Burst {
                    rate: 0.25,
                    size: 6,
                    window: 1.5,
                },
                "burst 0.25 6 1.5",
            ),
            (FaultSpec::Targeted { rate: 0.1 }, "targeted 0.1"),
        ] {
            assert_eq!(spec.to_spec_string(), text);
        }
        assert_eq!(RetryPolicy::OnRepair.to_spec_string(), "on-repair");
        assert_eq!(
            RetryPolicy::Backoff {
                budget: 3,
                base: 0.5,
                shed_depth: 0
            }
            .to_spec_string(),
            "budget 3 backoff 0.5"
        );
        assert_eq!(
            RetryPolicy::Backoff {
                budget: 3,
                base: 0.5,
                shed_depth: 16
            }
            .to_spec_string(),
            "budget 3 backoff 0.5 shed 16"
        );
        assert_eq!(RerouteMode::Greedy.to_spec_string(), "greedy");
        assert_eq!(RerouteMode::Mincost.to_spec_string(), "mincost");
        assert_eq!(RerouteMode::default(), RerouteMode::Greedy);
    }

    #[test]
    fn activity_rules() {
        assert!(!FaultSpec::Iid.active(0.0));
        assert!(FaultSpec::Iid.active(0.01));
        assert!(FaultSpec::Targeted { rate: 0.1 }.active(0.0));
        assert!(FaultSpec::Storm {
            rate: 0.1,
            window: 1.0,
            stage: None
        }
        .active(0.0));
    }
}
