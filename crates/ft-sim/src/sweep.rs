//! Multi-seed parallel sweeps.
//!
//! The driver follows the `mc_event_probability_parallel` worker
//! discipline: each thread owns **one RNG-per-seed engine and one
//! reusable [`SimWorkspace`]** for its whole block of seeds, so a
//! sweep's steady-state allocation is one workspace per worker.
//! Results land in seed order regardless of the worker count — per-seed
//! runs are independent, so `threads` affects wall clock only, never
//! the report bytes.

use crate::engine::{run_seed_obs, run_seed_with, SeedOutcome, SimConfig, SimWorkspace};
use crate::fabric::Fabric;
use ft_obs::TraceBuf;

/// Runs every seed of `seeds` on `threads` workers (0 = one per
/// available core). Outcomes come back in `seeds` order.
pub fn run_sweep(
    fabric: &Fabric,
    cfg: &SimConfig,
    seeds: &[u64],
    threads: usize,
) -> Vec<SeedOutcome> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    };
    let threads = threads.clamp(1, seeds.len().max(1));
    if threads <= 1 || seeds.len() <= 1 {
        let mut ws = SimWorkspace::default();
        return seeds
            .iter()
            .map(|&s| run_seed_with(fabric, cfg, s, &mut ws))
            .collect();
    }
    let mut outcomes: Vec<Option<SeedOutcome>> = vec![None; seeds.len()];
    let chunk = seeds.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (seed_block, out_block) in seeds.chunks(chunk).zip(outcomes.chunks_mut(chunk)) {
            scope.spawn(move || {
                let mut ws = SimWorkspace::default();
                for (&seed, slot) in seed_block.iter().zip(out_block.iter_mut()) {
                    *slot = Some(run_seed_with(fabric, cfg, seed, &mut ws));
                }
            });
        }
    });
    outcomes
        .into_iter()
        .map(|o| o.expect("sweep worker left a seed unfilled"))
        .collect()
}

/// [`run_sweep`] with an NDJSON trace of every seed's event stream.
///
/// Each seed gets its own [`TraceBuf`] opened with a
/// `{"ev":"seed",...}` header; the buffers are concatenated in `seeds`
/// order after all workers finish, so the returned trace is
/// byte-identical for every `threads` value.
pub fn run_sweep_traced(
    fabric: &Fabric,
    cfg: &SimConfig,
    seeds: &[u64],
    threads: usize,
) -> (Vec<SeedOutcome>, String) {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    };
    let threads = threads.clamp(1, seeds.len().max(1));
    let run_one = |seed: u64, ws: &mut SimWorkspace| {
        let mut buf = TraceBuf::new();
        buf.begin_seed(seed);
        let outcome = run_seed_obs(fabric, cfg, seed, ws, &mut buf);
        (outcome, buf.into_string())
    };
    if threads <= 1 || seeds.len() <= 1 {
        let mut ws = SimWorkspace::default();
        let (outcomes, traces): (Vec<_>, Vec<_>) =
            seeds.iter().map(|&s| run_one(s, &mut ws)).unzip();
        return (outcomes, traces.concat());
    }
    let mut slots: Vec<Option<(SeedOutcome, String)>> = vec![None; seeds.len()];
    let chunk = seeds.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (seed_block, out_block) in seeds.chunks(chunk).zip(slots.chunks_mut(chunk)) {
            scope.spawn(move || {
                let mut ws = SimWorkspace::default();
                for (&seed, slot) in seed_block.iter().zip(out_block.iter_mut()) {
                    *slot = Some(run_one(seed, &mut ws));
                }
            });
        }
    });
    let (outcomes, traces): (Vec<_>, Vec<_>) = slots
        .into_iter()
        .map(|o| o.expect("sweep worker left a seed unfilled"))
        .unzip();
    (outcomes, traces.concat())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{HoldingTime, TrafficPattern};

    fn cfg() -> SimConfig {
        SimConfig {
            arrival_rate: 5.0,
            holding: HoldingTime::Exponential { mean: 1.0 },
            pattern: TrafficPattern::Uniform,
            fault_rate: 0.003,
            fault_open_share: 0.5,
            mttr: 8.0,
            duration: 40.0,
            warmup: 0.0,
            buckets: 4,
            ..SimConfig::default()
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let fabric = Fabric::clos_strict(2, 2);
        let cfg = cfg();
        let seeds: Vec<u64> = (1..=6).collect();
        let serial = run_sweep(&fabric, &cfg, &seeds, 1);
        let parallel = run_sweep(&fabric, &cfg, &seeds, 3);
        let auto = run_sweep(&fabric, &cfg, &seeds, 0);
        assert_eq!(serial, parallel);
        assert_eq!(serial, auto);
        let got: Vec<u64> = serial.iter().map(|o| o.seed).collect();
        assert_eq!(got, seeds);
    }

    #[test]
    fn traced_sweep_is_thread_count_independent() {
        let fabric = Fabric::clos_strict(2, 2);
        let cfg = cfg();
        let seeds: Vec<u64> = (1..=5).collect();
        let (serial_out, serial_trace) = run_sweep_traced(&fabric, &cfg, &seeds, 1);
        let (parallel_out, parallel_trace) = run_sweep_traced(&fabric, &cfg, &seeds, 4);
        assert_eq!(serial_out, parallel_out);
        assert_eq!(serial_trace, parallel_trace);
        // The trace is the untraced sweep's outcomes plus bytes on the side.
        assert_eq!(serial_out, run_sweep(&fabric, &cfg, &seeds, 1));
        assert_eq!(serial_trace.matches("\"ev\":\"seed\"").count(), seeds.len());
    }

    #[test]
    fn single_seed_sweep() {
        let fabric = Fabric::clos_strict(2, 2);
        let out = run_sweep(&fabric, &cfg(), &[9], 4);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].seed, 9);
    }
}
