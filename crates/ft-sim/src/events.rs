//! The event queue: a monotone virtual clock over a binary heap.
//!
//! Every state change in the simulation is an [`Event`] — call
//! arrivals, hangups, switch faults, repair completions, burst-phase
//! toggles — ordered by `(time, seq)` where `seq` is a monotone
//! insertion counter. The counter makes the ordering *total* even when
//! two events share a timestamp, which is what makes the processed
//! event stream (and hence every report) byte-reproducible per seed.

use ft_graph::ids::EdgeId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What an event does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A new call arrives. `epoch` guards against stale scheduling: the
    /// arrival process is resampled (epoch bumped) when the arrival
    /// rate changes, and events from older epochs are ignored — exact
    /// for Poisson arrivals by memorylessness.
    Arrival {
        /// Arrival-process epoch the event was scheduled under.
        epoch: u32,
    },
    /// A live call completes naturally. `token` revalidates the slot:
    /// if the session was killed by a fault (and the slot possibly
    /// reused), the token mismatches and the hangup is a no-op.
    Hangup {
        /// Router session slot.
        slot: u32,
        /// Call token the slot held when the hangup was scheduled.
        token: u64,
    },
    /// The next switch failure of the aggregate fault process. `epoch`
    /// guards staleness: the superposition rate changes whenever the
    /// healthy-switch count does, so the pending draw is invalidated
    /// and resampled (exact by memorylessness).
    Fault {
        /// Fault-process epoch the event was scheduled under.
        epoch: u32,
    },
    /// Repair of one failed switch completes (scheduled at fault time).
    Repair {
        /// The switch being restored to the normal state.
        edge: EdgeId,
    },
    /// The bursty traffic modulator flips between its on/off phases.
    BurstToggle,
}

/// One scheduled event.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Virtual time at which the event fires.
    pub time: f64,
    /// Monotone insertion counter breaking time ties deterministically.
    pub seq: u64,
    /// The event payload.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Min-heap of events keyed by `(time, seq)`.
#[derive(Clone, Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at `time`.
    ///
    /// # Panics
    /// Panics on a non-finite timestamp (a scheduling bug upstream).
    pub fn push(&mut self, time: f64, kind: EventKind) {
        assert!(time.is_finite(), "non-finite event time {time}");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Earliest pending timestamp, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Clears pending events and resets the sequence counter (workspace
    /// reuse between seeds of a sweep).
    pub fn reset(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, EventKind::BurstToggle);
        q.push(1.0, EventKind::Arrival { epoch: 0 });
        q.push(2.0, EventKind::Fault { epoch: 0 });
        let times: Vec<f64> = std::iter::from_fn(|| q.pop().map(|e| e.time)).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(1.0, EventKind::Hangup { slot: 0, token: 0 });
        q.push(1.0, EventKind::Hangup { slot: 1, token: 0 });
        q.push(1.0, EventKind::Hangup { slot: 2, token: 0 });
        let slots: Vec<u32> = std::iter::from_fn(|| {
            q.pop().map(|e| match e.kind {
                EventKind::Hangup { slot, .. } => slot,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(slots, vec![0, 1, 2]);
    }

    #[test]
    fn reset_clears_and_restarts_seq() {
        let mut q = EventQueue::new();
        q.push(1.0, EventKind::BurstToggle);
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        q.push(5.0, EventKind::BurstToggle);
        assert_eq!(q.peek_time(), Some(5.0));
        assert_eq!(q.pop().unwrap().seq, 0);
    }

    #[test]
    #[should_panic(expected = "non-finite event time")]
    fn rejects_nan_time() {
        EventQueue::new().push(f64::NAN, EventKind::BurstToggle);
    }
}
