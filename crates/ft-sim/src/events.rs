//! The event queue: a monotone virtual clock over a binary heap.
//!
//! Every state change in the simulation is an [`Event`] — call
//! arrivals, hangups, switch faults, repair completions, burst-phase
//! toggles — ordered by `(time, seq)` where `seq` is a monotone
//! insertion counter. The counter makes the ordering *total* even when
//! two events share a timestamp, which is what makes the processed
//! event stream (and hence every report) byte-reproducible per seed.

use ft_graph::ids::EdgeId;
use std::cmp::Ordering;

/// What an event does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A new call arrives. `epoch` guards against stale scheduling: the
    /// arrival process is resampled (epoch bumped) when the arrival
    /// rate changes, and events from older epochs are ignored — exact
    /// for Poisson arrivals by memorylessness.
    Arrival {
        /// Arrival-process epoch the event was scheduled under.
        epoch: u32,
    },
    /// A live call completes naturally. `token` revalidates the slot:
    /// if the session was killed by a fault (and the slot possibly
    /// reused), the token mismatches and the hangup is a no-op.
    Hangup {
        /// Router session slot.
        slot: u32,
        /// Call token the slot held when the hangup was scheduled.
        /// Per-run counter: `u32` keeps the heap slot at 24 bytes and
        /// still allows 4 × 10⁹ calls per seed before wrapping.
        token: u32,
    },
    /// The next switch failure of the aggregate fault process. `epoch`
    /// guards staleness: the superposition rate changes whenever the
    /// healthy-switch count does, so the pending draw is invalidated
    /// and resampled (exact by memorylessness).
    Fault {
        /// Fault-process epoch the event was scheduled under.
        epoch: u32,
    },
    /// Repair of one failed switch completes (scheduled at fault time).
    Repair {
        /// The switch being restored to the normal state.
        edge: EdgeId,
    },
    /// The bursty traffic modulator flips between its on/off phases.
    BurstToggle,
    /// A scheduled reroute retry for a fault-killed call waiting under
    /// the backoff policy. `token` identifies the pending entry; if the
    /// call was already rerouted, expired, or shed, the token no longer
    /// matches anything and the event is a no-op.
    Retry {
        /// Per-run pending-call token the retry was scheduled for.
        token: u32,
    },
}

/// One scheduled event.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Virtual time at which the event fires.
    pub time: f64,
    /// Monotone insertion counter breaking time ties deterministically.
    pub seq: u64,
    /// The event payload.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Earliest-first total order; the queue pops in this order.
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// One heap slot: the timestamp pre-encoded as an order-preserving
/// `u64` key (valid because event times are non-negative), so sift
/// comparisons are two integer compares instead of an f64 `total_cmp`.
#[derive(Clone, Copy, Debug)]
struct Slot {
    key: u64,
    /// Narrow sequence: resets per seed; 4 × 10⁹ events per run.
    seq: u32,
    kind: EventKind,
}

impl Slot {
    #[inline(always)]
    fn before(&self, other: &Slot) -> bool {
        (self.key, self.seq) < (other.key, other.seq)
    }
}

/// Heap arity. A 4-ary heap halves the depth of a binary one: pops do
/// slightly more compares per level but far fewer levels and swaps,
/// and children share cache lines — the queue sits on the hot path of
/// every simulated event, where this is worth ~2x over
/// `std::collections::BinaryHeap`.
const D: usize = 4;

/// Min-heap of events keyed by `(time, seq)`.
///
/// The pop order — ascending `(time, seq)`, a *total* order — is the
/// determinism contract; the flat `D`-ary layout is an implementation
/// detail and cannot affect the event stream.
#[derive(Clone, Debug, Default)]
pub struct EventQueue {
    slots: Vec<Slot>,
    next_seq: u32,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at `time`.
    ///
    /// # Panics
    /// Panics on a non-finite or negative timestamp (a scheduling bug
    /// upstream; virtual time starts at 0).
    pub fn push(&mut self, time: f64, kind: EventKind) {
        assert!(time.is_finite(), "non-finite event time {time}");
        assert!(time >= 0.0, "negative event time {time}");
        let seq = self.next_seq;
        self.next_seq = self
            .next_seq
            .checked_add(1)
            .expect("event sequence overflow");
        let slot = Slot {
            // `+ 0.0` normalises -0.0 (admitted by the `>= 0.0` guard,
            // and producible by exponential draws at u = 1) to +0.0,
            // whose bit pattern would otherwise sort after every
            // positive timestamp and break the total order.
            key: (time + 0.0).to_bits(),
            seq,
            kind,
        };
        // sift up
        let mut i = self.slots.len();
        self.slots.push(slot);
        while i > 0 {
            let parent = (i - 1) / D;
            if self.slots[i].before(&self.slots[parent]) {
                self.slots.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event> {
        let len = self.slots.len();
        if len == 0 {
            return None;
        }
        let top = self.slots[0];
        let last = self.slots.pop().expect("nonempty");
        if len > 1 {
            // sift the (former) last slot down from the root
            self.slots[0] = last;
            let len = self.slots.len();
            let mut i = 0;
            loop {
                let first = i * D + 1;
                if first >= len {
                    break;
                }
                let mut min = first;
                for c in first + 1..(first + D).min(len) {
                    if self.slots[c].before(&self.slots[min]) {
                        min = c;
                    }
                }
                if self.slots[min].before(&self.slots[i]) {
                    self.slots.swap(i, min);
                    i = min;
                } else {
                    break;
                }
            }
        }
        Some(Event {
            time: f64::from_bits(top.key),
            seq: top.seq as u64,
            kind: top.kind,
        })
    }

    /// Earliest pending timestamp, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.slots.first().map(|s| f64::from_bits(s.key))
    }

    /// `(time, seq)` of the earliest pending event, if any — the key a
    /// caller-owned priority lane compares against (see
    /// [`Self::reserve_seq`]).
    pub fn peek_key(&self) -> Option<(f64, u64)> {
        self.slots
            .first()
            .map(|s| (f64::from_bits(s.key), s.seq as u64))
    }

    /// Allocates the next sequence number *without* enqueueing
    /// anything. A caller that keeps its own priority lane for one
    /// event class (the engine holds pending call arrivals in a tiny
    /// sorted side-list instead of the heap) must draw its sequence
    /// numbers from this same counter, so the `(time, seq)` total
    /// order — and with it the popped event stream — spans both
    /// structures unchanged.
    pub fn reserve_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq = self
            .next_seq
            .checked_add(1)
            .expect("event sequence overflow");
        seq as u64
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Clears pending events and resets the sequence counter (workspace
    /// reuse between seeds of a sweep).
    pub fn reset(&mut self) {
        self.slots.clear();
        self.next_seq = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, EventKind::BurstToggle);
        q.push(1.0, EventKind::Arrival { epoch: 0 });
        q.push(2.0, EventKind::Fault { epoch: 0 });
        let times: Vec<f64> = std::iter::from_fn(|| q.pop().map(|e| e.time)).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(1.0, EventKind::Hangup { slot: 0, token: 0 });
        q.push(1.0, EventKind::Hangup { slot: 1, token: 0 });
        q.push(1.0, EventKind::Hangup { slot: 2, token: 0 });
        let slots: Vec<u32> = std::iter::from_fn(|| {
            q.pop().map(|e| match e.kind {
                EventKind::Hangup { slot, .. } => slot,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(slots, vec![0, 1, 2]);
    }

    #[test]
    fn reset_clears_and_restarts_seq() {
        let mut q = EventQueue::new();
        q.push(1.0, EventKind::BurstToggle);
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        q.push(5.0, EventKind::BurstToggle);
        assert_eq!(q.peek_time(), Some(5.0));
        assert_eq!(q.pop().unwrap().seq, 0);
    }

    #[test]
    #[should_panic(expected = "non-finite event time")]
    fn rejects_nan_time() {
        EventQueue::new().push(f64::NAN, EventKind::BurstToggle);
    }

    #[test]
    #[should_panic(expected = "negative event time")]
    fn rejects_negative_time() {
        EventQueue::new().push(-1.0, EventKind::BurstToggle);
    }

    #[test]
    fn negative_zero_sorts_first() {
        let mut q = EventQueue::new();
        q.push(1.0, EventKind::BurstToggle);
        q.push(-0.0, EventKind::Arrival { epoch: 3 });
        let first = q.pop().unwrap();
        assert_eq!(first.time, 0.0);
        assert!(matches!(first.kind, EventKind::Arrival { epoch: 3 }));
        assert_eq!(q.pop().unwrap().time, 1.0);
    }

    /// The D-ary heap must pop the exact `(time, seq)` total order a
    /// sorted reference produces, under adversarial interleaving.
    #[test]
    fn random_interleaving_pops_in_total_order() {
        use ft_graph::gen::rng;
        use rand::Rng;
        let mut r = rng(99);
        let mut q = EventQueue::new();
        let mut reference: Vec<(f64, u64)> = Vec::new();
        let mut popped: Vec<(f64, u64)> = Vec::new();
        let mut seq = 0u64;
        for _ in 0..2000 {
            if q.is_empty() || r.random_bool(0.6) {
                // duplicate timestamps on purpose: ties must break by seq
                let t = (r.random_range(0..50) as f64) * 0.5;
                q.push(t, EventKind::BurstToggle);
                reference.push((t, seq));
                seq += 1;
            } else {
                let e = q.pop().unwrap();
                popped.push((e.time, e.seq));
            }
        }
        while let Some(e) = q.pop() {
            popped.push((e.time, e.seq));
        }
        // every element popped exactly once…
        let mut sorted = reference.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        assert_eq!(popped.len(), sorted.len());
        // …and each pop run (between pushes) is locally sorted; verify
        // global multiset equality plus the heap invariant via replay
        let mut replay = EventQueue::new();
        for &(t, _) in &reference {
            replay.push(t, EventKind::BurstToggle);
        }
        let drained: Vec<(f64, u64)> =
            std::iter::from_fn(|| replay.pop().map(|e| (e.time, e.seq))).collect();
        assert_eq!(drained, sorted);
    }
}
