//! The deterministic discrete-event engine.
//!
//! One [`run_seed`] drives a [`CircuitRouter`] through virtual time:
//! Poisson call arrivals (optionally burst-modulated) draw terminal
//! pairs from the traffic pattern and holding times from the holding
//! distribution; a pluggable [`FaultInjector`] decides which switches
//! fail and when (the i.i.d. default is the exact superposition:
//! next-failure ~ `Exp(healthy · rate)`, resampled — valid by
//! memorylessness — whenever the healthy count changes; storms, bursts
//! and the targeted adversary are the correlated alternatives); each
//! fault recomputes the §4 repair mask, kills the circuits crossing
//! discarded vertices and runs them through the [`RetryPolicy`]
//! degradation ladder; repairs restore switches after `Exp(mttr)`.
//!
//! Everything randomized flows through one seeded RNG in event order,
//! so a `(scenario, seed)` pair reproduces a byte-identical event
//! stream — pinned by the FNV fingerprint every run accumulates over
//! the events it processes.
//!
//! The engine is generic over an [`Observer`] ([`run_seed_obs`]): every
//! semantic event — arrival, connect, busy-reject, block, hangup,
//! fault, kill, reroute attempt, retry, shed, repair, recovery-close —
//! is emitted to it stamped with the enclosing queue event's
//! `(sim-time, seq)` plus session token and circuit path where they
//! exist. The observer is write-only: the engine never reads it back,
//! so tracing cannot perturb the simulation, and with the default
//! [`Noop`] the monomorphized emission sites vanish entirely (the
//! golden fingerprints and the gated sim benches pin that).

use crate::events::{Event, EventKind, EventQueue};
use crate::fabric::Fabric;
use crate::inject::{FaultInjector, FaultSpec, InjectCtx, RerouteMode, RetryPolicy, Strike};
use crate::metrics::{Bucket, Metrics};
use crate::workload::{exp_draw, HoldingTime, TrafficPattern};
use ft_failure::{AliveTracker, FailureInstance, SwitchState};
use ft_graph::gen::{random_permutation, rng};
use ft_graph::{Digraph, EdgeId, KernelStats, VertexId};
use ft_networks::{CircuitRouter, MincostBatch, RouteError, SessionId};
use ft_obs::{Hist, Noop, Observer, TraceEvent};
use rand::rngs::SmallRng;

/// Resolved simulation parameters (one seed's worth of work).
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// Network-wide Poisson call arrival rate (calls per time unit).
    pub arrival_rate: f64,
    /// Holding-time distribution.
    pub holding: HoldingTime,
    /// Traffic pattern.
    pub pattern: TrafficPattern,
    /// Per-switch exponential failure rate (0 = fault-free). Drives the
    /// [`FaultSpec::Iid`] process only.
    pub fault_rate: f64,
    /// Share of switch failures that are open (the rest are closed).
    pub fault_open_share: f64,
    /// Mean time to repair a failed switch (0 = failures permanent).
    pub mttr: f64,
    /// Simulated duration.
    pub duration: f64,
    /// Warm-up time excluded from headline counters.
    pub warmup: f64,
    /// Number of time-series buckets over `[0, duration]`.
    pub buckets: usize,
    /// Fault-injection process (i.i.d., storm, burst, targeted).
    pub faults: FaultSpec,
    /// Reaction policy for fault-killed calls (degradation ladder).
    pub retry: RetryPolicy,
    /// Placement planner for the kill-time reroute wave (greedy
    /// per-victim search vs min-cost batch planning).
    pub reroute: RerouteMode,
}

impl Default for SimConfig {
    /// The scenario-grammar defaults: unit uniform load on a fault-free
    /// fabric, i.i.d. faults (inert at `fault_rate = 0`), on-repair
    /// retries.
    fn default() -> Self {
        SimConfig {
            arrival_rate: 1.0,
            holding: HoldingTime::Exponential { mean: 1.0 },
            pattern: TrafficPattern::Uniform,
            fault_rate: 0.0,
            fault_open_share: 0.5,
            mttr: 0.0,
            duration: 100.0,
            warmup: 0.0,
            buckets: 10,
            faults: FaultSpec::Iid,
            retry: RetryPolicy::OnRepair,
            reroute: RerouteMode::Greedy,
        }
    }
}

impl SimConfig {
    /// Whether the configured fault process can fail any switch at all
    /// (gates the fabric fault-capability assertion).
    pub fn has_faults(&self) -> bool {
        self.faults.active(self.fault_rate)
    }
}

/// Outcome of simulating one seed.
#[derive(Clone, Debug, PartialEq)]
pub struct SeedOutcome {
    /// The seed.
    pub seed: u64,
    /// Aggregated metrics.
    pub metrics: Metrics,
    /// FNV fingerprint of the processed event stream.
    pub fingerprint: u64,
    /// Number of events processed.
    pub events: u64,
    /// Per-kernel work counters of the run's route searches
    /// (deterministic: the same run always pops the same frontiers).
    pub kernel: KernelStats,
}

/// Reusable per-worker buffers: one allocation set serves every seed a
/// sweep worker runs (the `mc_event_probability_parallel` discipline:
/// one RNG + one workspace per worker). Besides the queue and call
/// table this holds the fault-path scratch — the incremental repair
/// mask and the killed/victim/delta buffers — so a fault or repair
/// event allocates nothing.
#[derive(Clone, Debug, Default)]
pub struct SimWorkspace {
    queue: EventQueue,
    /// Pending call arrivals, sorted descending by `(time, seq)` so the
    /// next one is `last()`. Arrivals are ~half of all queue traffic
    /// but at most one is *live* at a time (plus a few stale draws from
    /// burst-rate changes), so this tiny lane replaces two O(log n)
    /// heap operations per call with O(1) vector ops. Sequence numbers
    /// come from the shared queue counter, so the `(time, seq)` pop
    /// order — and the event-stream fingerprint — is byte-identical to
    /// the all-heap ordering.
    arrivals: Vec<ArrivalEv>,
    calls: Vec<Option<Call>>,
    pending: Vec<PendingCall>,
    busy_now: Vec<u64>,
    /// Incrementally maintained §4 routable alive-mask.
    tracker: AliveTracker,
    /// Sessions killed by the event being processed (ascending slot).
    killed: Vec<SessionId>,
    /// Their drained call records (drained before any reroute can
    /// reuse a freed slot).
    victims: Vec<Call>,
    /// Vertices whose liveness the event flipped (≤ 2: the endpoints).
    delta: Vec<VertexId>,
    /// Dense histogram scratch, `bucket * rows + row` (bucket-major so
    /// the per-arrival occupancy sweep — every stage near the same
    /// occupancy bucket — touches adjacent words): rows `0..stages`
    /// hold arrival-observed per-stage occupancy (PASTA draws), row
    /// `stages` setup cost, row `stages + 1` path length. Folded into
    /// the corresponding `Metrics` histograms once per seed, so the
    /// per-arrival recording cost is one add per sample. All-zero
    /// between seeds (the flush re-zeroes every touched entry).
    dense_hist: Vec<u64>,
    /// Flat indices of nonzero `dense_hist` entries, first-touch order.
    dense_touched: Vec<u32>,
    /// Min-cost placement state, rebuilt per kill wave when
    /// `reroute = mincost` (untouched by the greedy mode).
    batch: MincostBatch,
}

#[derive(Clone, Copy, Debug)]
struct ArrivalEv {
    time: f64,
    seq: u64,
    epoch: u32,
}

#[derive(Clone, Copy, Debug)]
struct Call {
    token: u32,
    src: usize,
    dst: usize,
    hangup_time: f64,
}

#[derive(Clone, Copy, Debug)]
struct PendingCall {
    src: usize,
    dst: usize,
    hangup_time: f64,
    killed_at_epoch: u64,
    /// Sim-time of the kill (reroute-latency samples in sim-time).
    killed_at_time: f64,
    /// Whether the kill was counted in `metrics.dropped` (post-warmup).
    /// The eventual reroute/abandon increments the matching counter
    /// only if so, preserving `dropped == rerouted + abandoned`.
    counted: bool,
    /// Matches this entry to its scheduled `Retry` events (backoff
    /// policy only; the pending vector shifts, tokens don't).
    token: u32,
    /// Backoff retries still available after the next scheduled one.
    retries_left: u32,
    /// Delay of the next backoff retry (doubles each attempt).
    next_delay: f64,
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01B3;

struct Engine<'a, O: Observer> {
    fabric: &'a Fabric,
    cfg: &'a SimConfig,
    rng: SmallRng,
    router: CircuitRouter<'a>,
    /// Cached per-vertex stage table (per-stage occupancy accounting).
    stage_tab: &'a [u32],
    /// The configured fault process (which switch fails next, when).
    injector: Box<dyn FaultInjector>,
    inst: FailureInstance,
    healthy: usize,
    fault_epoch: u32,
    arrival_epoch: u32,
    burst_on: bool,
    /// Monotone counter of fault+repair events (reroute latency unit).
    churn_epoch: u64,
    token_counter: u32,
    /// Tokens matching backoff `Retry` events to pending entries.
    retry_counter: u32,
    /// Whether the fabric is currently degraded (failed switches or
    /// calls waiting for a reroute) — the recovery-metric indicator.
    degraded_now: bool,
    /// When the current degraded episode began.
    degraded_since: f64,
    perm: Vec<u32>,
    now: f64,
    last_t: f64,
    active_now: u64,
    metrics: Metrics,
    fingerprint: u64,
    events: u64,
    ws: &'a mut SimWorkspace,
    /// Structured-event sink (Noop monomorphizes every emission away).
    obs: &'a mut O,
    /// `seq` of the queue event currently being processed — trace
    /// events inherit it, so one queue event's emissions share a stamp.
    cur_seq: u64,
    /// Scratch for materialising circuit paths into trace events
    /// (touched only when `O::ENABLED`).
    trace_path: Vec<u32>,
}

/// Runs one seed with fresh buffers.
pub fn run_seed(fabric: &Fabric, cfg: &SimConfig, seed: u64) -> SeedOutcome {
    run_seed_with(fabric, cfg, seed, &mut SimWorkspace::default())
}

/// Runs one seed reusing a worker-owned [`SimWorkspace`].
pub fn run_seed_with(
    fabric: &Fabric,
    cfg: &SimConfig,
    seed: u64,
    ws: &mut SimWorkspace,
) -> SeedOutcome {
    run_seed_obs(fabric, cfg, seed, ws, &mut Noop)
}

/// Runs one seed with an explicit [`Observer`] receiving every
/// structured event. The observer is write-only and cannot perturb the
/// run: metrics, fingerprint, and event count are identical to
/// [`run_seed_with`] whatever the observer does.
pub fn run_seed_obs<O: Observer>(
    fabric: &Fabric,
    cfg: &SimConfig,
    seed: u64,
    ws: &mut SimWorkspace,
    obs: &mut O,
) -> SeedOutcome {
    assert!(
        !cfg.has_faults() || fabric.supports_faults(),
        "fabric {} cannot express switch faults as vertex discards",
        fabric.label()
    );
    let net = fabric.net();
    let n = fabric.terminals();
    let num_stages = net.num_stages();

    // Reset the workspace for this seed.
    ws.queue.reset();
    ws.arrivals.clear();
    ws.calls.clear();
    ws.pending.clear();
    ws.busy_now.clear();
    ws.busy_now.resize(num_stages, 0);
    ws.killed.clear();
    ws.victims.clear();
    ws.delta.clear();
    ws.dense_hist
        .resize((num_stages + 2) * ft_obs::NUM_BUCKETS, 0);
    ws.dense_touched.clear();
    let mut r = rng(seed);
    let perm = if matches!(cfg.pattern, TrafficPattern::Permutation) {
        random_permutation(&mut r, n)
    } else {
        Vec::new()
    };

    let metrics = Metrics {
        stage_busy_time: vec![0.0; num_stages],
        stage_occupancy_hist: vec![Hist::new(); num_stages],
        measured_time: cfg.duration - cfg.warmup,
        buckets: vec![Bucket::default(); cfg.buckets.max(1)],
        ..Metrics::default()
    };

    let m = net.num_edges();
    let inst = FailureInstance::perfect(m);
    // Synchronise the incremental repair mask to the clean slate; it is
    // then maintained O(1) per fault/repair event for the whole run.
    ws.tracker.reset_for(
        net,
        net.inputs().iter().chain(net.outputs()).copied(),
        &inst,
    );
    let mut engine = Engine {
        fabric,
        cfg,
        router: CircuitRouter::new(net),
        stage_tab: net.stage_table(),
        injector: cfg.faults.build(cfg, fabric),
        inst,
        healthy: m,
        fault_epoch: 0,
        arrival_epoch: 0,
        burst_on: false,
        churn_epoch: 0,
        token_counter: 0,
        retry_counter: 0,
        degraded_now: false,
        degraded_since: 0.0,
        perm,
        now: 0.0,
        last_t: 0.0,
        active_now: 0,
        metrics,
        fingerprint: FNV_OFFSET,
        events: 0,
        ws,
        obs,
        cur_seq: 0,
        trace_path: Vec::new(),
        rng: r,
    };
    engine.schedule_initial();
    engine.run();
    engine.flush_hists();
    SeedOutcome {
        seed,
        metrics: engine.metrics,
        fingerprint: engine.fingerprint,
        events: engine.events,
        kernel: engine.router.kernel_stats(),
    }
}

impl<'a, O: Observer> Engine<'a, O> {
    /// Forwards one structured event to the observer under the current
    /// `(time, seq)` stamp. With [`Noop`] this compiles to nothing.
    #[inline]
    fn emit(&mut self, ev: TraceEvent<'_>) {
        if O::ENABLED {
            self.obs.event(self.now, self.cur_seq, &ev);
        }
    }

    /// Records one sample into a dense scratch row: one array add per
    /// sample on the arrival hot path, deferred to [`Self::flush_hists`].
    #[inline]
    fn dense_record(&mut self, row: usize, v: f64) {
        let rows = self.metrics.stage_occupancy_hist.len() + 2;
        let flat = ft_obs::bucket_index(v) as usize * rows + row;
        let c = &mut self.ws.dense_hist[flat];
        if *c == 0 {
            self.ws.dense_touched.push(flat as u32);
        }
        *c += 1;
    }

    /// Folds the dense scratch into the occupancy / setup-cost /
    /// path-length histograms and re-zeroes it, restoring the
    /// between-seeds invariant. The sparse `Hist` is canonical by
    /// construction, so the first-touch flush order cannot affect the
    /// folded bytes.
    fn flush_hists(&mut self) {
        let stages = self.metrics.stage_occupancy_hist.len();
        for k in 0..self.ws.dense_touched.len() {
            let flat = self.ws.dense_touched[k] as usize;
            let n = std::mem::take(&mut self.ws.dense_hist[flat]);
            let (row, idx) = (flat % (stages + 2), flat / (stages + 2));
            let h = if row < stages {
                &mut self.metrics.stage_occupancy_hist[row]
            } else if row == stages {
                &mut self.metrics.setup_cost_hist
            } else {
                &mut self.metrics.path_len_hist
            };
            h.record_bucket_n(idx as u32, n);
        }
        self.ws.dense_touched.clear();
    }

    /// Takes the trace scratch buffer filled with a session's path as
    /// raw vertex ids (callers put it back after emitting, so the
    /// buffer is reused for the whole run).
    fn take_path(&mut self, id: SessionId) -> Vec<u32> {
        let mut p = std::mem::take(&mut self.trace_path);
        p.clear();
        if let Some(path) = self.router.session_path(id) {
            p.extend(path.iter().map(|v| v.0));
        }
        p
    }

    /// Asks the injector for its next fault time (the trait-call wrapper
    /// assembling the read-only context from disjoint engine fields).
    fn injector_next_fault(&mut self) -> Option<f64> {
        let ctx = InjectCtx {
            net: self.fabric.net(),
            inst: &self.inst,
            alive: self.ws.tracker.alive(),
            router: &self.router,
            healthy: self.healthy,
        };
        self.injector.next_fault(self.now, &ctx, &mut self.rng)
    }

    /// Asks the injector to pick the victim of a fault firing now.
    fn injector_strike(&mut self) -> Option<Strike> {
        let ctx = InjectCtx {
            net: self.fabric.net(),
            inst: &self.inst,
            alive: self.ws.tracker.alive(),
            router: &self.router,
            healthy: self.healthy,
        };
        self.injector.strike(self.now, &ctx, &mut self.rng)
    }

    fn schedule_initial(&mut self) {
        let mean = 1.0 / self.arrival_rate();
        let dt = exp_draw(&mut self.rng, mean);
        self.push_arrival(dt, 0);
        if let Some(t) = self.injector_next_fault() {
            self.ws.queue.push(t, EventKind::Fault { epoch: 0 });
        }
        if let Some((_, mean_off, _)) = self.cfg.pattern.burst_params() {
            let dt = exp_draw(&mut self.rng, mean_off);
            self.ws.queue.push(dt, EventKind::BurstToggle);
        }
    }

    /// Pops the globally earliest event across the heap and the arrival
    /// lane — exactly the `(time, seq)` total order a single heap would
    /// produce, since both draw from one sequence counter.
    fn next_event(&mut self) -> Option<Event> {
        let take_arrival = match (self.ws.arrivals.last(), self.ws.queue.peek_key()) {
            (Some(a), Some(key)) => (a.time, a.seq) < key,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if take_arrival {
            let a = self.ws.arrivals.pop().expect("checked nonempty");
            return Some(Event {
                time: a.time,
                seq: a.seq,
                kind: EventKind::Arrival { epoch: a.epoch },
            });
        }
        self.ws.queue.pop()
    }

    /// Schedules an arrival into the side lane (sorted descending, so
    /// the earliest stays at the back).
    fn push_arrival(&mut self, time: f64, epoch: u32) {
        assert!(time.is_finite() && time >= 0.0, "bad arrival time {time}");
        let seq = self.ws.queue.reserve_seq();
        let a = ArrivalEv { time, seq, epoch };
        let pos = self
            .ws
            .arrivals
            .partition_point(|b| (b.time, b.seq) > (a.time, a.seq));
        self.ws.arrivals.insert(pos, a);
    }

    fn run(&mut self) {
        while let Some(ev) = self.next_event() {
            if ev.time > self.cfg.duration {
                break;
            }
            self.advance_clock(ev.time);
            self.absorb(&ev.kind, ev.time);
            self.events += 1;
            self.cur_seq = ev.seq;
            match ev.kind {
                EventKind::Arrival { epoch } => self.on_arrival(epoch),
                EventKind::Hangup { slot, token } => self.on_hangup(slot, token),
                EventKind::Fault { epoch } => self.on_fault(epoch),
                EventKind::Repair { edge } => self.on_repair(edge),
                EventKind::BurstToggle => self.on_burst_toggle(),
                EventKind::Retry { token } => self.on_retry(token),
            }
        }
        self.advance_clock(self.cfg.duration);
        // Calls still waiting for a reroute at the end of the run never
        // re-established: they are lost (counted iff their drop was).
        self.metrics.abandoned += self.ws.pending.iter().filter(|p| p.counted).count() as u64;
        self.ws.pending.clear();
    }

    /// Folds one event into the stream fingerprint (stale events
    /// included — they are part of the processed stream).
    fn absorb(&mut self, kind: &EventKind, time: f64) {
        let (tag, a, b) = match *kind {
            EventKind::Arrival { epoch } => (1u64, epoch as u64, 0),
            EventKind::Hangup { slot, token } => (2, slot as u64, token as u64),
            EventKind::Fault { epoch } => (3, epoch as u64, 0),
            EventKind::Repair { edge } => (4, edge.index() as u64, 0),
            EventKind::BurstToggle => (5, 0, 0),
            EventKind::Retry { token } => (6, token as u64, 0),
        };
        for word in [tag, time.to_bits(), a, b] {
            self.fingerprint = (self.fingerprint ^ word).wrapping_mul(FNV_PRIME);
        }
    }

    /// Advances occupancy integrals over the measured window.
    fn advance_clock(&mut self, to: f64) {
        let a = self.last_t.max(self.cfg.warmup);
        let b = to.min(self.cfg.duration);
        if b > a {
            let dt = b - a;
            self.metrics.active_time += self.active_now as f64 * dt;
            if self.degraded_now {
                self.metrics.degraded_time += dt;
            }
            for (acc, &busy) in self
                .metrics
                .stage_busy_time
                .iter_mut()
                .zip(self.ws.busy_now.iter())
            {
                *acc += busy as f64 * dt;
            }
        }
        self.last_t = to;
        self.now = to;
    }

    fn measured(&self) -> bool {
        self.now >= self.cfg.warmup
    }

    fn bucket(&mut self) -> &mut Bucket {
        let k = self.metrics.buckets.len();
        let idx = ((self.now / self.cfg.duration) * k as f64) as usize;
        &mut self.metrics.buckets[idx.min(k - 1)]
    }

    fn arrival_rate(&self) -> f64 {
        let boost = match self.cfg.pattern.burst_params() {
            Some((_, _, boost)) if self.burst_on => boost,
            _ => 1.0,
        };
        self.cfg.arrival_rate * boost
    }

    fn schedule_next_arrival(&mut self) {
        let mean = 1.0 / self.arrival_rate();
        let dt = exp_draw(&mut self.rng, mean);
        let epoch = self.arrival_epoch;
        self.push_arrival(self.now + dt, epoch);
    }

    /// Establishes bookkeeping for a freshly connected session and
    /// returns the circuit's path length in switches (counted during
    /// the one occupancy walk, so metrics need no second walk).
    fn admit(&mut self, id: SessionId, src: usize, dst: usize, hangup_time: f64) -> u64 {
        let slot = id.0 as usize;
        if self.ws.calls.len() <= slot {
            self.ws.calls.resize(slot + 1, None);
        }
        let token = self.token_counter;
        self.token_counter = self
            .token_counter
            .checked_add(1)
            .expect("call token overflow");
        self.ws.calls[slot] = Some(Call {
            token,
            src,
            dst,
            hangup_time,
        });
        self.ws
            .queue
            .push(hangup_time, EventKind::Hangup { slot: id.0, token });
        let mut vertices = 0u64;
        if let Some(path) = self.router.session_path(id) {
            vertices = path.len() as u64;
            for &v in path {
                self.ws.busy_now[self.stage_tab[v.index()] as usize] += 1;
            }
        }
        self.active_now += 1;
        vertices.saturating_sub(1)
    }

    fn on_arrival(&mut self, epoch: u32) {
        if epoch != self.arrival_epoch {
            return; // stale draw from before a rate change
        }
        self.schedule_next_arrival();
        let n = self.fabric.terminals();
        let (src, dst) = self.cfg.pattern.sample_pair(&mut self.rng, n, &self.perm);
        let input = self.fabric.net().inputs()[src];
        let output = self.fabric.net().outputs()[dst];
        let measured = self.measured();
        if measured {
            self.metrics.offered += 1;
            // PASTA sampling: the occupancy this Poisson arrival sees is
            // an unbiased draw of the time-average per-stage occupancy.
            // Counts land in the dense scratch (one add per stage); the
            // end-of-run flush folds them into the per-stage histograms.
            let ws = &mut *self.ws;
            let rows = self.metrics.stage_occupancy_hist.len() + 2;
            for (s, &busy) in ws.busy_now.iter().enumerate() {
                let flat = ft_obs::bucket_index(busy as f64) as usize * rows + s;
                let c = &mut ws.dense_hist[flat];
                if *c == 0 {
                    ws.dense_touched.push(flat as u32);
                }
                *c += 1;
            }
        }
        self.bucket().offered += 1;
        self.emit(TraceEvent::Arrival {
            src: src as u32,
            dst: dst as u32,
        });
        let pops_before = if measured {
            self.router.kernel_stats().bibfs_pops
        } else {
            0
        };
        let attempt = self.router.connect(input, output);
        if measured {
            // Setup cost in bibfs frontier pops: the deterministic
            // search-effort analogue of setup latency.
            let pops = self.router.kernel_stats().bibfs_pops - pops_before;
            let row = self.metrics.stage_occupancy_hist.len();
            self.dense_record(row, pops as f64);
        }
        match attempt {
            Ok(id) => {
                let holding = self.cfg.holding.sample(&mut self.rng);
                self.bucket().connected += 1;
                let token = self.token_counter; // the token admit assigns
                let len = self.admit(id, src, dst, self.now + holding);
                if O::ENABLED {
                    let path = self.take_path(id);
                    self.emit(TraceEvent::Connect {
                        token,
                        src: src as u32,
                        dst: dst as u32,
                        path: &path,
                    });
                    self.trace_path = path;
                }
                if measured {
                    self.metrics.connected += 1;
                    self.metrics.total_path_len += len;
                    self.metrics.max_path_len = self.metrics.max_path_len.max(len);
                    let row = self.metrics.stage_occupancy_hist.len() + 1;
                    self.dense_record(row, len as f64);
                }
            }
            Err(RouteError::Blocked(_, _)) => {
                if measured {
                    self.metrics.blocked += 1;
                }
                self.bucket().blocked += 1;
                self.emit(TraceEvent::Block {
                    src: src as u32,
                    dst: dst as u32,
                });
            }
            Err(_) => {
                // Terminals are exempt from repair discards, so an
                // unavailable terminal is a busy terminal.
                debug_assert!(self.router.is_alive(input) && self.router.is_alive(output));
                if measured {
                    self.metrics.rejected_busy += 1;
                }
                self.emit(TraceEvent::BusyReject {
                    src: src as u32,
                    dst: dst as u32,
                });
            }
        }
    }

    fn on_hangup(&mut self, slot: u32, token: u32) {
        let live = self
            .ws
            .calls
            .get(slot as usize)
            .and_then(|c| c.as_ref())
            .is_some_and(|c| c.token == token);
        if !live {
            return; // session was killed by a fault (slot possibly reused)
        }
        self.emit(TraceEvent::Hangup { token });
        self.ws.calls[slot as usize] = None;
        let id = SessionId(slot);
        let (busy_now, stage_tab) = (&mut self.ws.busy_now, self.stage_tab);
        let torn_down = self
            .router
            .disconnect_visit(id, |v| busy_now[stage_tab[v.index()] as usize] -= 1);
        debug_assert!(torn_down);
        self.active_now -= 1;
        if self.measured() {
            self.metrics.completed += 1;
        }
    }

    /// Debug-only oracle: the incrementally maintained repair mask must
    /// be bit-identical to the from-scratch recompute after every event.
    #[cfg(debug_assertions)]
    fn assert_mask_matches_scratch(&self) {
        assert_eq!(
            self.ws.tracker.alive(),
            self.fabric.alive_mask(&self.inst),
            "incremental repair mask diverged from scratch recompute"
        );
    }

    /// Recomputes the degraded indicator (failed switches present or
    /// calls waiting for a reroute) and books the recovery metrics on
    /// its edges: a rising edge opens an episode, a falling edge closes
    /// one and records its full length as a time-to-recover sample
    /// (fully healed + drained ⇒ blocking is back at its fault-free
    /// baseline). Episodes still open at the end of the run contribute
    /// to `degraded_time` but not to the closed-interval samples.
    fn update_degraded(&mut self) {
        let degraded = self.healthy < self.inst.len() || !self.ws.pending.is_empty();
        if degraded == self.degraded_now {
            return;
        }
        if degraded {
            self.degraded_since = self.now;
        } else {
            let span = self.now - self.degraded_since;
            self.emit(TraceEvent::RecoveryClose { span });
            if self.measured() {
                self.metrics.recovery_sum += span;
                self.metrics.recovery_count += 1;
                self.metrics.recovery_max = self.metrics.recovery_max.max(span);
            }
        }
        self.degraded_now = degraded;
    }

    fn on_fault(&mut self, epoch: u32) {
        if epoch != self.fault_epoch || self.healthy == 0 {
            return; // stale draw from before a healthy-count change
        }
        let Some(strike) = self.injector_strike() else {
            // No viable victim (e.g. a storm whose target group came up
            // empty): the event is a no-op, but the process continues.
            self.reschedule_faults();
            return;
        };
        self.churn_epoch += 1;
        let e = strike.edge;
        debug_assert!(
            self.inst.is_normal(e),
            "strike hit an already-failed switch"
        );
        self.inst.set_state(e, strike.state);
        self.healthy -= 1;
        self.emit(TraceEvent::Fault {
            switch: e.index() as u32,
            open: matches!(strike.state, SwitchState::Open),
            episode: strike.new_episode,
        });
        if self.measured() {
            self.metrics.faults += 1;
            if strike.new_episode {
                self.metrics.storms += 1;
            }
        }
        // Delta-update the repair mask: one switch transition can only
        // discard its (≤ 2) endpoints, so the event touches the killed
        // circuits' paths and nothing else — no O(V + E) recompute, no
        // whole-table session rescan, no allocation.
        let (t, h) = self.fabric.net().graph().endpoints(e);
        self.ws.delta.clear();
        self.ws.tracker.fail_edge(t, h, &mut self.ws.delta);
        #[cfg(debug_assertions)]
        self.assert_mask_matches_scratch();
        // Collect the crossing circuits in ascending slot order BEFORE
        // releasing any: the wholesale-mask path killed in slot order,
        // and both the reroute order and the router's free-list (slot
        // reuse) are fingerprint-relevant.
        self.ws.killed.clear();
        for i in 0..self.ws.delta.len() {
            let v = self.ws.delta[i];
            if let Some(id) = self.router.session_through(v) {
                if !self.ws.killed.contains(&id) {
                    self.ws.killed.push(id);
                }
            }
        }
        self.ws.killed.sort_unstable_by_key(|id| id.0);
        for i in 0..self.ws.killed.len() {
            let id = self.ws.killed[i];
            let (busy_now, stage_tab) = (&mut self.ws.busy_now, self.stage_tab);
            let torn_down = self
                .router
                .disconnect_visit(id, |v| busy_now[stage_tab[v.index()] as usize] -= 1);
            debug_assert!(torn_down);
        }
        // Withdraw the newly-dead vertices from routing (their circuits
        // are already released, so no further kills happen here).
        for i in 0..self.ws.delta.len() {
            let v = self.ws.delta[i];
            self.router.kill_vertex_into(v, &mut self.ws.killed);
        }
        let measured = self.measured();
        // Drain every victim's call record BEFORE attempting reroutes:
        // a reroute may reuse any just-freed slot (free-list order is
        // unspecified), and admitting into a later victim's slot would
        // otherwise clobber its record mid-loop.
        self.ws.victims.clear();
        for i in 0..self.ws.killed.len() {
            let id = self.ws.killed[i];
            let call = self.ws.calls[id.0 as usize]
                .take()
                .expect("killed session had no call record");
            self.emit(TraceEvent::Kill {
                token: call.token,
                slot: id.0,
            });
            self.ws.victims.push(call);
        }
        // Min-cost mode snapshots the idle fabric ONCE per kill wave
        // (after the victims' paths were released above) and places the
        // wave's reroutes by successive min-cost augmentations on it.
        let mincost = matches!(self.cfg.reroute, RerouteMode::Mincost);
        if mincost && !self.ws.victims.is_empty() {
            self.router.begin_mincost_batch(&mut self.ws.batch);
        }
        for i in 0..self.ws.victims.len() {
            let call = self.ws.victims[i];
            if measured {
                self.metrics.dropped += 1;
            }
            self.bucket().dropped += 1;
            self.active_now -= 1;
            self.route_after_kill(call, measured, mincost);
        }
        if self.cfg.mttr > 0.0 {
            let dt = exp_draw(&mut self.rng, self.cfg.mttr);
            self.ws
                .queue
                .push(self.now + dt, EventKind::Repair { edge: e });
        }
        self.reschedule_faults();
        self.update_degraded();
    }

    /// The degradation ladder's admission step for one killed call: an
    /// immediate reroute attempt — greedy search or min-cost batch
    /// placement per `mincost` — then, per the retry policy, either
    /// park in the pending queue for repair-triggered retries, or
    /// schedule deterministic exponential-backoff retries (shedding
    /// outright when the queue is past the overload threshold).
    fn route_after_kill(&mut self, call: Call, counted: bool, mincost: bool) {
        match self.cfg.retry {
            RetryPolicy::OnRepair => {
                if !self.kill_time_attempt(call, counted, mincost) {
                    self.ws.pending.push(PendingCall {
                        src: call.src,
                        dst: call.dst,
                        hangup_time: call.hangup_time,
                        killed_at_epoch: self.churn_epoch,
                        killed_at_time: self.now,
                        counted,
                        token: 0,
                        retries_left: 0,
                        next_delay: 0.0,
                    });
                }
            }
            RetryPolicy::Backoff {
                budget,
                base,
                shed_depth,
            } => {
                if shed_depth > 0 && self.ws.pending.len() >= shed_depth {
                    // Storm-mode admission shedding: the queue is past
                    // the overload threshold, drop without retrying.
                    self.emit(TraceEvent::Shed {
                        token: call.token,
                        src: call.src as u32,
                        dst: call.dst as u32,
                    });
                    if counted {
                        self.metrics.shed += 1;
                        self.metrics.abandoned += 1;
                    }
                    return;
                }
                if self.kill_time_attempt(call, counted, mincost) {
                    return;
                }
                if budget == 0 {
                    if counted {
                        self.metrics.abandoned += 1;
                    }
                    return;
                }
                let token = self.retry_counter;
                self.retry_counter = self
                    .retry_counter
                    .checked_add(1)
                    .expect("retry token overflow");
                self.ws.pending.push(PendingCall {
                    src: call.src,
                    dst: call.dst,
                    hangup_time: call.hangup_time,
                    killed_at_epoch: self.churn_epoch,
                    killed_at_time: self.now,
                    counted,
                    token,
                    retries_left: budget - 1,
                    next_delay: base * 2.0,
                });
                self.ws
                    .queue
                    .push(self.now + base, EventKind::Retry { token });
            }
        }
    }

    /// A scheduled backoff retry fires: expire, reroute, or back off
    /// again (doubling the delay) until the budget runs out.
    fn on_retry(&mut self, token: u32) {
        let Some(pos) = self.ws.pending.iter().position(|p| p.token == token) else {
            return; // entry already resolved
        };
        self.emit(TraceEvent::Retry { token });
        let p = self.ws.pending[pos];
        if p.hangup_time <= self.now {
            self.ws.pending.remove(pos);
            if p.counted {
                self.metrics.abandoned += 1;
            }
        } else if self.try_reroute_inner(
            p.src,
            p.dst,
            p.hangup_time,
            p.killed_at_epoch,
            p.killed_at_time,
            p.counted,
        ) {
            self.ws.pending.remove(pos);
        } else if p.retries_left > 0 {
            let entry = &mut self.ws.pending[pos];
            entry.retries_left -= 1;
            let at = self.now + entry.next_delay;
            // Delays double deterministically; the clamp keeps the
            // timestamp finite for pathological budgets.
            entry.next_delay = (entry.next_delay * 2.0).min(1e18);
            self.ws.queue.push(at, EventKind::Retry { token });
        } else {
            self.ws.pending.remove(pos);
            if p.counted {
                self.metrics.abandoned += 1;
            }
        }
        self.update_degraded();
    }

    fn on_repair(&mut self, edge: EdgeId) {
        debug_assert!(!self.inst.is_normal(edge));
        self.churn_epoch += 1;
        self.inst.set_state(edge, SwitchState::Normal);
        self.healthy += 1;
        self.emit(TraceEvent::Repair {
            switch: edge.index() as u32,
        });
        if self.measured() {
            self.metrics.repairs += 1;
        }
        // Delta-update: a repair can only revive the switch's endpoints
        // (it kills nothing, so occupancy is untouched).
        let (t, h) = self.fabric.net().graph().endpoints(edge);
        self.ws.delta.clear();
        self.ws.tracker.repair_edge(t, h, &mut self.ws.delta);
        #[cfg(debug_assertions)]
        self.assert_mask_matches_scratch();
        for i in 0..self.ws.delta.len() {
            let v = self.ws.delta[i];
            self.router.revive_vertex(v);
        }
        self.reschedule_faults();
        if matches!(self.cfg.retry, RetryPolicy::OnRepair) {
            // Waiting calls retry in kill order; expired ones are lost.
            // (Under the backoff policy retries fire at their own
            // scheduled times instead.)
            let mut waiting = std::mem::take(&mut self.ws.pending);
            waiting.retain(|p| {
                if p.hangup_time <= self.now {
                    if p.counted {
                        self.metrics.abandoned += 1;
                    }
                    return false;
                }
                !self.try_reroute_inner(
                    p.src,
                    p.dst,
                    p.hangup_time,
                    p.killed_at_epoch,
                    p.killed_at_time,
                    p.counted,
                )
            });
            debug_assert!(self.ws.pending.is_empty());
            self.ws.pending = waiting;
        }
        self.update_degraded();
    }

    /// Invalidates the pending next-fault draw (epoch bump) and asks
    /// the injector for a fresh one — for the i.i.d. process an exact
    /// resample of the aggregate exponential after a healthy-count
    /// change (valid by memorylessness); episode processes answer from
    /// their remembered schedules.
    fn reschedule_faults(&mut self) {
        self.fault_epoch += 1;
        if let Some(t) = self.injector_next_fault() {
            let epoch = self.fault_epoch;
            self.ws.queue.push(t, EventKind::Fault { epoch });
        }
    }

    /// The immediate reroute attempt of one kill-wave victim: greedy
    /// per-victim search, or a min-cost placement on the wave's batch
    /// snapshot. Later attempts (backoff retries, on-repair drains) are
    /// always greedy — the batch snapshot is only valid within the
    /// wave that built it.
    fn kill_time_attempt(&mut self, call: Call, counted: bool, mincost: bool) -> bool {
        if mincost {
            self.try_mincost_place(
                call.src,
                call.dst,
                call.hangup_time,
                self.churn_epoch,
                self.now,
                counted,
            )
        } else {
            self.try_reroute_inner(
                call.src,
                call.dst,
                call.hangup_time,
                self.churn_epoch,
                self.now,
                counted,
            )
        }
    }

    /// Attempts to place a killed call by one min-cost augmentation on
    /// the current kill wave's batch snapshot. A successful placement
    /// is committed (same bookkeeping as a greedy reroute) and counts
    /// as one `moved` operation; a failed probe is planning-only — it
    /// touches neither the fabric nor the metrics beyond the trace
    /// event, which is the mode's minimal-disruption guarantee.
    fn try_mincost_place(
        &mut self,
        src: usize,
        dst: usize,
        hangup_time: f64,
        killed_at: u64,
        killed_at_time: f64,
        counted: bool,
    ) -> bool {
        let input = self.fabric.net().inputs()[src];
        let output = self.fabric.net().outputs()[dst];
        match self.router.mincost_place(&mut self.ws.batch, input, output) {
            Ok(id) => {
                if counted {
                    self.metrics.moved += 1;
                    self.metrics.rerouted += 1;
                    self.metrics.reroute_latency_events += self.churn_epoch - killed_at;
                    self.metrics
                        .reroute_hist_events
                        .record((self.churn_epoch - killed_at) as f64);
                    self.metrics
                        .reroute_hist_time
                        .record(self.now - killed_at_time);
                }
                let token = self.token_counter; // the token admit assigns
                self.admit(id, src, dst, hangup_time);
                if O::ENABLED {
                    let path = self.take_path(id);
                    self.emit(TraceEvent::Reroute {
                        token,
                        src: src as u32,
                        dst: dst as u32,
                        ok: true,
                        path: &path,
                    });
                    self.trace_path = path;
                }
                true
            }
            Err(_) => {
                self.emit(TraceEvent::Reroute {
                    token: 0,
                    src: src as u32,
                    dst: dst as u32,
                    ok: false,
                    path: &[],
                });
                false
            }
        }
    }

    /// Attempts to re-establish a killed call. Returns whether it
    /// succeeded (bookkeeping done). `counted` says whether the kill
    /// entered `metrics.dropped`; the reroute counter mirrors it so the
    /// `dropped == rerouted + abandoned` identity holds under warmup.
    fn try_reroute_inner(
        &mut self,
        src: usize,
        dst: usize,
        hangup_time: f64,
        killed_at: u64,
        killed_at_time: f64,
        counted: bool,
    ) -> bool {
        let input = self.fabric.net().inputs()[src];
        let output = self.fabric.net().outputs()[dst];
        if counted {
            // Every greedy attempt — successful or not — executes a
            // search against the live fabric; that is the disruption
            // the `moved` counter measures (min-cost placement probes
            // are planning-only and count successes alone).
            self.metrics.moved += 1;
        }
        match self.router.connect(input, output) {
            Ok(id) => {
                if counted {
                    self.metrics.rerouted += 1;
                    self.metrics.reroute_latency_events += self.churn_epoch - killed_at;
                    self.metrics
                        .reroute_hist_events
                        .record((self.churn_epoch - killed_at) as f64);
                    self.metrics
                        .reroute_hist_time
                        .record(self.now - killed_at_time);
                }
                let token = self.token_counter; // the token admit assigns
                self.admit(id, src, dst, hangup_time);
                if O::ENABLED {
                    let path = self.take_path(id);
                    self.emit(TraceEvent::Reroute {
                        token,
                        src: src as u32,
                        dst: dst as u32,
                        ok: true,
                        path: &path,
                    });
                    self.trace_path = path;
                }
                true
            }
            Err(_) => {
                self.emit(TraceEvent::Reroute {
                    token: 0,
                    src: src as u32,
                    dst: dst as u32,
                    ok: false,
                    path: &[],
                });
                false
            }
        }
    }

    fn on_burst_toggle(&mut self) {
        let Some((mean_on, mean_off, _)) = self.cfg.pattern.burst_params() else {
            return;
        };
        self.burst_on = !self.burst_on;
        let phase_mean = if self.burst_on { mean_on } else { mean_off };
        let dt = exp_draw(&mut self.rng, phase_mean);
        self.ws.queue.push(self.now + dt, EventKind::BurstToggle);
        // The arrival rate changed: invalidate the pending interarrival
        // draw and resample under the new rate (exact by memorylessness).
        self.arrival_epoch += 1;
        self.schedule_next_arrival();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg() -> SimConfig {
        SimConfig {
            arrival_rate: 4.0,
            holding: HoldingTime::Exponential { mean: 1.0 },
            pattern: TrafficPattern::Uniform,
            fault_rate: 0.0,
            fault_open_share: 0.5,
            mttr: 0.0,
            duration: 50.0,
            warmup: 0.0,
            buckets: 5,
            faults: FaultSpec::Iid,
            retry: RetryPolicy::OnRepair,
            reroute: RerouteMode::Greedy,
        }
    }

    #[test]
    fn arrival_accounting_is_conserved() {
        let fabric = Fabric::clos_strict(2, 3);
        let out = run_seed(&fabric, &base_cfg(), 7);
        let m = &out.metrics;
        assert!(m.offered > 100);
        assert_eq!(m.offered, m.connected + m.blocked + m.rejected_busy);
        // fault-free: no drops, every connected call completes or is
        // still live at the end
        assert_eq!(m.dropped, 0);
        assert_eq!(m.faults, 0);
        assert!(m.completed <= m.connected);
        let bucket_offered: u64 = m.buckets.iter().map(|b| b.offered).sum();
        assert_eq!(bucket_offered, m.offered);
    }

    #[test]
    fn strictly_nonblocking_fabric_never_blocks() {
        let fabric = Fabric::clos_strict(2, 3);
        let mut cfg = base_cfg();
        cfg.arrival_rate = 20.0; // saturating load
        let out = run_seed(&fabric, &cfg, 11);
        assert_eq!(out.metrics.blocked, 0, "{:?}", out.metrics);
        assert!(out.metrics.rejected_busy > 0, "load too low to saturate");
    }

    #[test]
    fn same_seed_reproduces_fingerprint_and_metrics() {
        let fabric = Fabric::clos_strict(2, 2);
        let mut cfg = base_cfg();
        cfg.fault_rate = 0.002;
        cfg.mttr = 5.0;
        let a = run_seed(&fabric, &cfg, 42);
        let b = run_seed(&fabric, &cfg, 42);
        assert_eq!(a, b);
        let c = run_seed(&fabric, &cfg, 43);
        assert_ne!(a.fingerprint, c.fingerprint);
    }

    #[test]
    fn workspace_reuse_matches_fresh_buffers() {
        let fabric = Fabric::clos_strict(2, 2);
        let mut cfg = base_cfg();
        cfg.fault_rate = 0.005;
        cfg.mttr = 3.0;
        let mut ws = SimWorkspace::default();
        let first = run_seed_with(&fabric, &cfg, 1, &mut ws);
        let second = run_seed_with(&fabric, &cfg, 2, &mut ws);
        assert_eq!(first, run_seed(&fabric, &cfg, 1));
        assert_eq!(second, run_seed(&fabric, &cfg, 2));
    }

    #[test]
    fn faults_drop_and_reroute_sessions() {
        let fabric = Fabric::clos_strict(2, 3);
        let mut cfg = base_cfg();
        cfg.arrival_rate = 3.0;
        cfg.holding = HoldingTime::Exponential { mean: 4.0 };
        cfg.fault_rate = 0.004;
        cfg.mttr = 10.0;
        cfg.duration = 400.0;
        let out = run_seed(&fabric, &cfg, 5);
        let m = &out.metrics;
        assert!(m.faults > 10, "faults {}", m.faults);
        assert!(m.repairs > 0);
        assert!(m.dropped > 0);
        assert_eq!(m.dropped, m.rerouted + m.abandoned);
        // The strict Clos has spare middle capacity: most drops reroute.
        assert!(m.rerouted > 0);
    }

    #[test]
    fn mincost_reroute_keeps_identities_and_moves_no_more_than_greedy() {
        let fabric = Fabric::clos_strict(2, 3);
        let mut cfg = base_cfg();
        cfg.arrival_rate = 6.0;
        cfg.holding = HoldingTime::Exponential { mean: 2.0 };
        cfg.faults = FaultSpec::Storm {
            rate: 0.05,
            window: 2.0,
            stage: Some(1),
        };
        cfg.mttr = 8.0;
        cfg.duration = 300.0;
        let greedy = run_seed(&fabric, &cfg, 13);
        cfg.reroute = RerouteMode::Mincost;
        let mincost = run_seed(&fabric, &cfg, 13);
        for out in [&greedy, &mincost] {
            let m = &out.metrics;
            assert!(m.dropped > 0, "storms produced no drops");
            assert_eq!(m.dropped, m.rerouted + m.abandoned);
        }
        assert!(greedy.metrics.moved >= greedy.metrics.rerouted);
        assert!(
            mincost.metrics.moved <= greedy.metrics.moved,
            "mincost moved {} > greedy moved {}",
            mincost.metrics.moved,
            greedy.metrics.moved
        );
    }

    #[test]
    fn greedy_mode_is_byte_identical_to_default() {
        // `reroute = greedy` is the pre-portfolio behaviour: the enum
        // only branches at the kill wave, so the whole outcome — not
        // just the fingerprint — must be identical.
        let fabric = Fabric::clos_strict(2, 2);
        let mut cfg = base_cfg();
        cfg.fault_rate = 0.01;
        cfg.mttr = 5.0;
        cfg.duration = 200.0;
        let a = run_seed(&fabric, &cfg, 42);
        cfg.reroute = RerouteMode::Greedy;
        let b = run_seed(&fabric, &cfg, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn permanent_faults_degrade_until_blocked() {
        let fabric = Fabric::clos_strict(2, 2);
        let mut cfg = base_cfg();
        cfg.fault_rate = 0.02;
        cfg.mttr = 0.0; // no repair: the fabric decays
        cfg.duration = 300.0;
        let out = run_seed(&fabric, &cfg, 3);
        assert!(out.metrics.blocked > 0, "{:?}", out.metrics);
        assert_eq!(out.metrics.repairs, 0);
    }

    #[test]
    fn warmup_gates_headline_counters_not_buckets() {
        let fabric = Fabric::crossbar(4);
        let mut cfg = base_cfg();
        cfg.warmup = 25.0;
        let full = run_seed(&fabric, &cfg, 9);
        cfg.warmup = 0.0;
        let ungated = run_seed(&fabric, &cfg, 9);
        assert!(full.metrics.offered < ungated.metrics.offered);
        // identical event streams: warmup changes accounting, not dynamics
        assert_eq!(full.fingerprint, ungated.fingerprint);
        let fb: u64 = full.metrics.buckets.iter().map(|b| b.offered).sum();
        let ub: u64 = ungated.metrics.buckets.iter().map(|b| b.offered).sum();
        assert_eq!(fb, ub);
    }

    #[test]
    fn bursty_pattern_raises_offered_load() {
        let fabric = Fabric::crossbar(8);
        let mut quiet = base_cfg();
        quiet.duration = 200.0;
        let mut bursty = quiet.clone();
        bursty.pattern = TrafficPattern::Bursty {
            mean_on: 5.0,
            mean_off: 5.0,
            boost: 6.0,
        };
        let q = run_seed(&fabric, &quiet, 21);
        let b = run_seed(&fabric, &bursty, 21);
        // on/off split ~50/50 at 6x boost => ~3.5x the arrivals
        assert!(
            b.metrics.offered as f64 > 2.0 * q.metrics.offered as f64,
            "quiet {} bursty {}",
            q.metrics.offered,
            b.metrics.offered
        );
    }

    #[test]
    #[should_panic(expected = "cannot express switch faults")]
    fn crossbar_with_faults_is_rejected() {
        let fabric = Fabric::crossbar(4);
        let mut cfg = base_cfg();
        cfg.fault_rate = 0.01;
        run_seed(&fabric, &cfg, 1);
    }
}
