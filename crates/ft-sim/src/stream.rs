//! Deterministic workload-stream export for the `ftserve` replay
//! client.
//!
//! A *stream* is the offline rendering of one seed's traffic and fault
//! schedule: connects with their matching disconnects, plus switch
//! fault/repair times — everything a live client needs to drive the
//! online service through the same regime a scenario's simulation run
//! covers. The export is a pure function of `(scenario, seed)` drawn
//! from the workspace RNG in a fixed order, so two exports of the same
//! pair are identical event for event (pinned by tests), which is what
//! lets `ftserve --deterministic` runs produce byte-identical reports:
//! the replay client plays the stream in lockstep, so the server sees a
//! reproducible request sequence.
//!
//! The fault schedule is an *open-loop surrogate* of the engine's
//! closed-loop injectors: it draws from the same processes (i.i.d.
//! exponential, stage-group storms, correlated bursts, targeted
//! strikes) but against its own failed-switch ledger rather than the
//! live engine state, and the burst/targeted variants strike uniformly
//! rather than by adjacency/damage. That is deliberate — a recorded
//! stream must not depend on how the server reacts to it.
//!
//! Streams render to NDJSON (`render_ndjson`/[`parse_ndjson`]) so they
//! can be recorded by `ftsim --export-stream`, inspected with standard
//! tools, and replayed from disk.

use crate::scenario::Scenario;
use crate::workload::{exp_draw, TrafficPattern};
use ft_graph::gen::{random_permutation, rng};

/// One replayable service request (or fault-process strike) at a
/// virtual timestamp.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamEvent {
    /// Virtual time of the event (same clock as the scenario's
    /// `duration`); the replay client maps it to wall-clock via its
    /// speed multiplier.
    pub time: f64,
    /// What happens at `time`.
    pub kind: StreamKind,
}

/// The event payload of a [`StreamEvent`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StreamKind {
    /// Establish circuit `id` from input terminal `src` to output
    /// terminal `dst`.
    Connect {
        /// Client-chosen circuit id (unique within the stream).
        id: u64,
        /// Input terminal index.
        src: u32,
        /// Output terminal index.
        dst: u32,
    },
    /// Release circuit `id` (its holding time expired).
    Disconnect {
        /// The circuit id of the matching connect.
        id: u64,
    },
    /// Inject a switch failure.
    Fault {
        /// Failing switch (edge index).
        switch: u32,
        /// Open failure (`true`) or closed (`false`).
        open: bool,
    },
    /// Repair a previously failed switch.
    Repair {
        /// The switch being restored.
        switch: u32,
    },
}

/// Exports the deterministic stream of one `(scenario, seed)` pair.
///
/// Events come back sorted by `(time, generation order)` — ties break
/// by the order the generator drew them, so the result is a total
/// order and two exports of the same pair are equal element-wise.
pub fn export_stream(scenario: &Scenario, seed: u64) -> Vec<StreamEvent> {
    let fabric = scenario.fabric.build();
    let cfg = &scenario.config;
    let n = fabric.terminals();
    let mut r = rng(seed);
    let mut events: Vec<StreamEvent> = Vec::new();

    // Traffic: Poisson connects with their holding-time disconnects.
    // Disconnects falling past `duration` are omitted — those circuits
    // stay up until the client's session ends, like calls still live
    // at the end of a simulation run.
    let perm = if matches!(cfg.pattern, TrafficPattern::Permutation) {
        random_permutation(&mut r, n)
    } else {
        Vec::new()
    };
    if cfg.arrival_rate > 0.0 {
        let mut t = 0.0;
        let mut id = 0u64;
        loop {
            t += exp_draw(&mut r, 1.0 / cfg.arrival_rate);
            if t >= cfg.duration {
                break;
            }
            id += 1;
            let (src, dst) = cfg.pattern.sample_pair(&mut r, n, &perm);
            let hold = cfg.holding.sample(&mut r);
            events.push(StreamEvent {
                time: t,
                kind: StreamKind::Connect {
                    id,
                    src: src as u32,
                    dst: dst as u32,
                },
            });
            if t + hold < cfg.duration {
                events.push(StreamEvent {
                    time: t + hold,
                    kind: StreamKind::Disconnect { id },
                });
            }
        }
    }

    // Faults: the open-loop surrogate schedule (see module docs).
    if fabric.supports_faults() && cfg.faults.active(cfg.fault_rate) {
        push_fault_schedule(&mut events, scenario, &fabric, &mut r);
    }

    // Stable sort on time: the per-source generation order breaks ties
    // deterministically.
    events.sort_by(|a, b| a.time.total_cmp(&b.time));
    events
}

/// Draws the surrogate fault/repair schedule into `events`.
fn push_fault_schedule(
    events: &mut Vec<StreamEvent>,
    scenario: &Scenario,
    fabric: &crate::fabric::Fabric,
    r: &mut rand::rngs::SmallRng,
) {
    use crate::inject::FaultSpec;
    use rand::Rng;

    let cfg = &scenario.config;
    let net = fabric.net();
    let m = net.size();
    if m == 0 {
        return;
    }
    // Interval ledger: switch `s` is down during `[strike, failed_until[s])`
    // (`INFINITY` = permanent). Strike times from different episodes
    // can interleave (overlapping storm windows), so an interval test
    // is the exact guard where an apply-repairs-in-order sweep would
    // mis-order.
    let mut failed_until = vec![f64::NEG_INFINITY; m];
    let strike = |t: f64,
                  s: u32,
                  r: &mut rand::rngs::SmallRng,
                  failed_until: &mut [f64],
                  events: &mut Vec<StreamEvent>| {
        if t < failed_until[s as usize] {
            return; // still down from an earlier strike
        }
        let open = r.random::<f64>() < cfg.fault_open_share;
        events.push(StreamEvent {
            time: t,
            kind: StreamKind::Fault { switch: s, open },
        });
        failed_until[s as usize] = f64::INFINITY;
        if cfg.mttr > 0.0 {
            let rt = t + exp_draw(r, cfg.mttr);
            if rt < cfg.duration {
                failed_until[s as usize] = rt;
                events.push(StreamEvent {
                    time: rt,
                    kind: StreamKind::Repair { switch: s },
                });
            }
        }
    };

    match cfg.faults {
        FaultSpec::Iid => {
            let mut t = 0.0;
            loop {
                t += exp_draw(r, 1.0 / (cfg.fault_rate * m as f64));
                if t >= cfg.duration {
                    break;
                }
                let s = r.random_range(0..m) as u32;
                strike(t, s, r, &mut failed_until, events);
            }
        }
        FaultSpec::Storm {
            rate,
            window,
            stage,
        } => {
            // A storm sweeps the switches whose tail vertex sits in one
            // internal stage, spread evenly across `window`.
            let stages = net.num_stages();
            let mut t = 0.0;
            loop {
                t += exp_draw(r, 1.0 / rate);
                if t >= cfg.duration {
                    break;
                }
                let victim_stage = match stage {
                    Some(s) => s.min(stages.saturating_sub(2)),
                    // internal tail stages are 1 ..= stages - 2
                    None => {
                        if stages <= 2 {
                            0
                        } else {
                            1 + r.random_range(0..stages - 2)
                        }
                    }
                };
                let victims: Vec<u32> = (0..m)
                    .filter(|&e| {
                        let (tail, _) = net.graph().endpoints(ft_graph::EdgeId::from(e));
                        net.stage_of(tail) == victim_stage
                    })
                    .map(|e| e as u32)
                    .collect();
                let k = victims.len();
                for (i, &s) in victims.iter().enumerate() {
                    let st = t + window * i as f64 / k.max(1) as f64;
                    if st >= cfg.duration {
                        break;
                    }
                    strike(st, s, r, &mut failed_until, events);
                }
            }
        }
        FaultSpec::Burst { rate, size, window } => {
            // Surrogate burst: `size` uniform strikes across `window`
            // (the engine's injector clusters by adjacency; a recorded
            // stream keeps the volume and tempo, not the geometry).
            let mut t = 0.0;
            loop {
                t += exp_draw(r, 1.0 / rate);
                if t >= cfg.duration {
                    break;
                }
                for i in 0..size {
                    let st = t + window * i as f64 / size.max(1) as f64;
                    if st >= cfg.duration {
                        break;
                    }
                    let s = r.random_range(0..m) as u32;
                    strike(st, s, r, &mut failed_until, events);
                }
            }
        }
        FaultSpec::Targeted { rate } => {
            // Surrogate adversary: one uniform strike per attack (the
            // engine's greedy damage choice needs live state).
            let mut t = 0.0;
            loop {
                t += exp_draw(r, 1.0 / rate);
                if t >= cfg.duration {
                    break;
                }
                let s = r.random_range(0..m) as u32;
                strike(t, s, r, &mut failed_until, events);
            }
        }
    }
}

/// Renders a stream as NDJSON, one event per line, with the same
/// shortest-round-trip float formatting the reports use — parseable by
/// [`parse_ndjson`] and by line-oriented tools.
pub fn render_ndjson(events: &[StreamEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 64);
    for e in events {
        let t = e.time;
        match e.kind {
            StreamKind::Connect { id, src, dst } => out.push_str(&format!(
                "{{\"t\": {t}, \"ev\": \"connect\", \"id\": {id}, \"src\": {src}, \"dst\": {dst}}}\n"
            )),
            StreamKind::Disconnect { id } => {
                out.push_str(&format!("{{\"t\": {t}, \"ev\": \"disconnect\", \"id\": {id}}}\n"))
            }
            StreamKind::Fault { switch, open } => out.push_str(&format!(
                "{{\"t\": {t}, \"ev\": \"fault\", \"switch\": {switch}, \"open\": {open}}}\n"
            )),
            StreamKind::Repair { switch } => out.push_str(&format!(
                "{{\"t\": {t}, \"ev\": \"repair\", \"switch\": {switch}}}\n"
            )),
        }
    }
    out
}

/// Parses the NDJSON rendering back into events — the exact inverse of
/// [`render_ndjson`] on its own output (pinned by tests). Errors name
/// the first offending line.
pub fn parse_ndjson(text: &str) -> Result<Vec<StreamEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let fail = |what: &str| format!("stream line {}: {what}: `{line}`", i + 1);
        let field = |key: &str| -> Option<&str> {
            let pat = format!("\"{key}\": ");
            let start = line.find(&pat)? + pat.len();
            let rest = &line[start..];
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            Some(rest[..end].trim().trim_matches('"'))
        };
        let time: f64 = field("t")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| fail("bad or missing t"))?;
        let kind = match field("ev") {
            Some("connect") => StreamKind::Connect {
                id: field("id")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| fail("bad id"))?,
                src: field("src")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| fail("bad src"))?,
                dst: field("dst")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| fail("bad dst"))?,
            },
            Some("disconnect") => StreamKind::Disconnect {
                id: field("id")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| fail("bad id"))?,
            },
            Some("fault") => StreamKind::Fault {
                switch: field("switch")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| fail("bad switch"))?,
                open: field("open")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| fail("bad open"))?,
            },
            Some("repair") => StreamKind::Repair {
                switch: field("switch")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| fail("bad switch"))?,
            },
            _ => return Err(fail("unknown ev")),
        };
        events.push(StreamEvent { time, kind });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn storm_scenario() -> Scenario {
        Scenario::parse(
            "network = clos-strict 4 4\narrival_rate = 6.0\nholding = exp 1.0\n\
             fault_rate = 0\nfaults = storm 0.05 2 2\nmttr = 3\nduration = 120\nseeds = 1\n",
        )
        .unwrap()
    }

    #[test]
    fn export_is_deterministic_and_seed_sensitive() {
        let sc = storm_scenario();
        let a = export_stream(&sc, 1);
        let b = export_stream(&sc, 1);
        assert_eq!(a, b, "same (scenario, seed) must export identically");
        assert!(!a.is_empty());
        let c = export_stream(&sc, 2);
        assert_ne!(a, c, "seed change must perturb the stream");
    }

    #[test]
    fn stream_is_time_sorted_and_well_formed() {
        let sc = storm_scenario();
        let events = export_stream(&sc, 7);
        let mut connects = std::collections::BTreeSet::new();
        let mut faults = 0usize;
        for w in events.windows(2) {
            assert!(w[0].time <= w[1].time, "stream must be time-sorted");
        }
        for e in &events {
            assert!(e.time >= 0.0 && e.time < sc.config.duration);
            match e.kind {
                StreamKind::Connect { id, .. } => {
                    assert!(connects.insert(id), "connect ids must be unique");
                }
                StreamKind::Disconnect { id } => {
                    assert!(connects.contains(&id), "disconnect must follow its connect");
                }
                StreamKind::Fault { .. } => faults += 1,
                StreamKind::Repair { .. } => {}
            }
        }
        assert!(faults > 0, "storm scenario must carry faults");
    }

    #[test]
    fn faults_never_double_strike_a_failed_switch() {
        let sc = storm_scenario();
        let events = export_stream(&sc, 3);
        let m = sc.fabric.build().net().size();
        let mut failed = vec![false; m];
        for e in &events {
            match e.kind {
                StreamKind::Fault { switch, .. } => {
                    assert!(!failed[switch as usize], "fault on already-failed switch");
                    failed[switch as usize] = true;
                }
                StreamKind::Repair { switch } => {
                    assert!(failed[switch as usize], "repair of healthy switch");
                    failed[switch as usize] = false;
                }
                _ => {}
            }
        }
    }

    #[test]
    fn ndjson_round_trips_exactly() {
        let sc = storm_scenario();
        let events = export_stream(&sc, 11);
        let text = render_ndjson(&events);
        let back = parse_ndjson(&text).unwrap();
        assert_eq!(back, events);
        assert_eq!(render_ndjson(&back), text);
        assert!(parse_ndjson("{\"t\": 1, \"ev\": \"warp\"}\n").is_err());
        assert!(parse_ndjson("not json\n").is_err());
    }
}
