//! The metrics pipeline: counters, occupancy integrals, per-stage
//! utilisation, time-series buckets, and the Erlang-B reference.
//!
//! Headline counters are gated on the scenario's warm-up time so
//! steady-state rates are not diluted by the empty-network transient;
//! time-series buckets always span the full run (the transient is
//! exactly what they are for).

/// Per-bucket time-series counts (buckets partition `[0, duration]`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Bucket {
    /// Call arrivals in the bucket.
    pub offered: u64,
    /// Calls connected.
    pub connected: u64,
    /// Calls refused for lack of an idle path.
    pub blocked: u64,
    /// Live sessions killed by switch faults.
    pub dropped: u64,
}

/// Aggregated outcome of one simulated seed.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    /// Call arrivals (post-warm-up).
    pub offered: u64,
    /// Calls connected.
    pub connected: u64,
    /// Calls refused because a terminal was busy with another circuit.
    pub rejected_busy: u64,
    /// Calls refused for lack of an idle path — *blocking* proper.
    pub blocked: u64,
    /// Calls that completed naturally (hangup).
    pub completed: u64,
    /// Live sessions killed because a fault discarded a vertex on
    /// their path.
    pub dropped: u64,
    /// Dropped sessions successfully re-routed before their hangup.
    pub rerouted: u64,
    /// Dropped sessions never re-established (lost for good).
    pub abandoned: u64,
    /// Total fault/repair events a rerouted call waited through before
    /// re-establishment (0 = rerouted within the killing fault event).
    pub reroute_latency_events: u64,
    /// Switch-fault events.
    pub faults: u64,
    /// Repair completions.
    pub repairs: u64,
    /// Total switch count over established paths.
    pub total_path_len: u64,
    /// Longest established path (switches).
    pub max_path_len: u64,
    /// ∫ active-session count dt over the measured window.
    pub active_time: f64,
    /// Per-stage ∫ busy-vertex count dt over the measured window.
    pub stage_busy_time: Vec<f64>,
    /// Length of the measured window (duration − warmup).
    pub measured_time: f64,
    /// Full-run time series.
    pub buckets: Vec<Bucket>,
}

impl Metrics {
    /// Fraction of offered calls refused for lack of an idle path.
    pub fn blocking_probability(&self) -> f64 {
        ratio(self.blocked, self.offered)
    }

    /// Fraction of offered calls refused because a terminal was busy.
    pub fn busy_rejection(&self) -> f64 {
        ratio(self.rejected_busy, self.offered)
    }

    /// Fraction of connected calls later killed by a fault and never
    /// re-established.
    pub fn drop_rate(&self) -> f64 {
        ratio(self.abandoned, self.connected)
    }

    /// Mean path length (switches) over established circuits.
    pub fn mean_path_len(&self) -> f64 {
        if self.connected == 0 {
            0.0
        } else {
            self.total_path_len as f64 / self.connected as f64
        }
    }

    /// Time-averaged number of active sessions (the carried load in
    /// erlangs).
    pub fn carried_erlangs(&self) -> f64 {
        if self.measured_time > 0.0 {
            self.active_time / self.measured_time
        } else {
            0.0
        }
    }

    /// Mean busy fraction of stage `s` (`stage_size` vertices).
    pub fn stage_utilisation(&self, s: usize, stage_size: usize) -> f64 {
        if self.measured_time > 0.0 && stage_size > 0 {
            self.stage_busy_time[s] / (self.measured_time * stage_size as f64)
        } else {
            0.0
        }
    }

    /// Mean fault/repair events waited by calls that were re-routed.
    pub fn mean_reroute_latency_events(&self) -> f64 {
        if self.rerouted == 0 {
            0.0
        } else {
            self.reroute_latency_events as f64 / self.rerouted as f64
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The Erlang-B blocking probability of an `m`-server loss system
/// offered `a` erlangs, by the standard recurrence
/// `B(a, k) = a·B(a, k−1) / (k + a·B(a, k−1))`, `B(a, 0) = 1`.
///
/// The low-load sanity reference: a fabric with `m` independent
/// circuits and Poisson arrivals cleared on blocking must reproduce
/// this curve, whatever the holding-time distribution (Erlang-B
/// insensitivity).
pub fn erlang_b(a: f64, m: u32) -> f64 {
    assert!(a >= 0.0, "offered load must be nonnegative");
    let mut b = 1.0;
    for k in 1..=m {
        b = a * b / (k as f64 + a * b);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erlang_b_known_values() {
        // B(a, 0) = 1 for any load; B(0, m) = 0 for m >= 1
        assert_eq!(erlang_b(5.0, 0), 1.0);
        assert_eq!(erlang_b(0.0, 10), 0.0);
        // single server: B = a / (1 + a)
        assert!((erlang_b(1.0, 1) - 0.5).abs() < 1e-12);
        assert!((erlang_b(0.5, 1) - 1.0 / 3.0).abs() < 1e-12);
        // classical table value: B(10 erlangs, 10 servers) ≈ 0.2146
        assert!((erlang_b(10.0, 10) - 0.2146).abs() < 5e-4);
        // monotone in load, anti-monotone in servers
        assert!(erlang_b(2.0, 5) < erlang_b(4.0, 5));
        assert!(erlang_b(4.0, 8) < erlang_b(4.0, 5));
    }

    #[test]
    fn ratios_handle_empty_runs() {
        let m = Metrics::default();
        assert_eq!(m.blocking_probability(), 0.0);
        assert_eq!(m.busy_rejection(), 0.0);
        assert_eq!(m.drop_rate(), 0.0);
        assert_eq!(m.mean_path_len(), 0.0);
        assert_eq!(m.carried_erlangs(), 0.0);
        assert_eq!(m.mean_reroute_latency_events(), 0.0);
    }

    #[test]
    fn derived_rates() {
        let m = Metrics {
            offered: 100,
            connected: 80,
            blocked: 15,
            rejected_busy: 5,
            abandoned: 8,
            rerouted: 4,
            reroute_latency_events: 6,
            total_path_len: 240,
            active_time: 50.0,
            measured_time: 25.0,
            stage_busy_time: vec![12.5],
            ..Metrics::default()
        };
        assert!((m.blocking_probability() - 0.15).abs() < 1e-12);
        assert!((m.busy_rejection() - 0.05).abs() < 1e-12);
        assert!((m.drop_rate() - 0.1).abs() < 1e-12);
        assert!((m.mean_path_len() - 3.0).abs() < 1e-12);
        assert!((m.carried_erlangs() - 2.0).abs() < 1e-12);
        assert!((m.stage_utilisation(0, 2) - 0.25).abs() < 1e-12);
        assert!((m.mean_reroute_latency_events() - 1.5).abs() < 1e-12);
    }
}
