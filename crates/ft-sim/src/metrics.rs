//! The metrics pipeline: counters, occupancy integrals, per-stage
//! utilisation, time-series buckets, and the Erlang-B reference.
//!
//! Headline counters are gated on the scenario's warm-up time so
//! steady-state rates are not diluted by the empty-network transient;
//! time-series buckets always span the full run (the transient is
//! exactly what they are for).
//!
//! Distribution-shaped metrics (reroute latencies, setup cost, path
//! length, per-stage occupancy) are streamed into [`ft_obs::Hist`]
//! log-bucketed histograms instead of per-sample vectors: the per-seed
//! memory bound becomes O(occupied buckets) — a prerequisite for
//! 10⁷-event runs — and quantiles merge *exactly* across seeds by
//! summing bucket counts, so aggregate p50/p99/p999 are byte-identical
//! however the seeds were spread over worker threads.

use ft_obs::Hist;

/// Per-bucket time-series counts (buckets partition `[0, duration]`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Bucket {
    /// Call arrivals in the bucket.
    pub offered: u64,
    /// Calls connected.
    pub connected: u64,
    /// Calls refused for lack of an idle path.
    pub blocked: u64,
    /// Live sessions killed by switch faults.
    pub dropped: u64,
}

/// Aggregated outcome of one simulated seed.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    /// Call arrivals (post-warm-up).
    pub offered: u64,
    /// Calls connected.
    pub connected: u64,
    /// Calls refused because a terminal was busy with another circuit.
    pub rejected_busy: u64,
    /// Calls refused for lack of an idle path — *blocking* proper.
    pub blocked: u64,
    /// Calls that completed naturally (hangup).
    pub completed: u64,
    /// Live sessions killed because a fault discarded a vertex on
    /// their path.
    pub dropped: u64,
    /// Dropped sessions successfully re-routed before their hangup.
    pub rerouted: u64,
    /// Reroute operations *executed against the fabric* — the
    /// disruption cost the `reroute = mincost` planner minimises. Under
    /// greedy rerouting every attempt counts, successful or not (a
    /// failed attempt still searched the live fabric); under min-cost
    /// kill-wave placement only committed placements count, because
    /// failed probes run on the wave's planning snapshot and never
    /// touch the fabric. Backoff retries and on-repair drains are
    /// greedy in both modes and count per attempt.
    pub moved: u64,
    /// Dropped sessions never re-established (lost for good).
    pub abandoned: u64,
    /// Total fault/repair events a rerouted call waited through before
    /// re-establishment (0 = rerouted within the killing fault event).
    pub reroute_latency_events: u64,
    /// Switch-fault events.
    pub faults: u64,
    /// Repair completions.
    pub repairs: u64,
    /// Fault *episodes*: storm/burst/adversary strike onsets. Under the
    /// i.i.d. process every fault opens its own episode, so
    /// `storms == faults` there.
    pub storms: u64,
    /// Killed calls shed by the admission ladder instead of queued for
    /// retry (each also counts in `abandoned`, preserving the
    /// `dropped == rerouted + abandoned` identity).
    pub shed: u64,
    /// ∫ dt over the measured window while the network was *degraded*:
    /// at least one switch failed or at least one killed call waiting.
    pub degraded_time: f64,
    /// Sum of completed degraded-interval lengths (recovery episodes
    /// whose falling edge landed in the measured window).
    pub recovery_sum: f64,
    /// Number of completed recovery episodes.
    pub recovery_count: u64,
    /// Longest completed recovery episode.
    pub recovery_max: f64,
    /// Reroute-latency distribution in churn epochs (fault/repair
    /// events waited), one sample per counted reroute; basis for
    /// p50/p99/p999. Epoch counts are small integers, so the
    /// log-bucketed quantiles are exact below 64.
    pub reroute_hist_events: Hist,
    /// Reroute-latency distribution in sim-time (kill → re-establish).
    pub reroute_hist_time: Hist,
    /// Setup-cost distribution: bibfs frontier pops spent per arrival
    /// connect attempt — the deterministic search-effort analogue of
    /// setup latency (wall-clock would break byte-reproducibility).
    pub setup_cost_hist: Hist,
    /// Path-length distribution (switches) over established circuits.
    pub path_len_hist: Hist,
    /// Per-stage occupancy distributions: busy-vertex count of each
    /// stage sampled at call arrival instants (PASTA: Poisson arrivals
    /// see time averages).
    pub stage_occupancy_hist: Vec<Hist>,
    /// Total switch count over established paths.
    pub total_path_len: u64,
    /// Longest established path (switches).
    pub max_path_len: u64,
    /// ∫ active-session count dt over the measured window.
    pub active_time: f64,
    /// Per-stage ∫ busy-vertex count dt over the measured window.
    pub stage_busy_time: Vec<f64>,
    /// Length of the measured window (duration − warmup).
    pub measured_time: f64,
    /// Full-run time series.
    pub buckets: Vec<Bucket>,
}

impl Metrics {
    /// Fraction of offered calls refused for lack of an idle path.
    pub fn blocking_probability(&self) -> f64 {
        ratio(self.blocked, self.offered)
    }

    /// Fraction of offered calls refused because a terminal was busy.
    pub fn busy_rejection(&self) -> f64 {
        ratio(self.rejected_busy, self.offered)
    }

    /// Fraction of connected calls later killed by a fault and never
    /// re-established.
    pub fn drop_rate(&self) -> f64 {
        ratio(self.abandoned, self.connected)
    }

    /// Mean path length (switches) over established circuits.
    pub fn mean_path_len(&self) -> f64 {
        if self.connected == 0 {
            0.0
        } else {
            self.total_path_len as f64 / self.connected as f64
        }
    }

    /// Time-averaged number of active sessions (the carried load in
    /// erlangs).
    pub fn carried_erlangs(&self) -> f64 {
        if self.measured_time > 0.0 {
            self.active_time / self.measured_time
        } else {
            0.0
        }
    }

    /// Mean busy fraction of stage `s` (`stage_size` vertices).
    pub fn stage_utilisation(&self, s: usize, stage_size: usize) -> f64 {
        if self.measured_time > 0.0 && stage_size > 0 {
            self.stage_busy_time[s] / (self.measured_time * stage_size as f64)
        } else {
            0.0
        }
    }

    /// Mean fault/repair events waited by calls that were re-routed.
    pub fn mean_reroute_latency_events(&self) -> f64 {
        if self.rerouted == 0 {
            0.0
        } else {
            self.reroute_latency_events as f64 / self.rerouted as f64
        }
    }

    /// Mean length of a completed degraded interval — the expected
    /// sim-time from a fault episode's onset back to a fully healthy,
    /// no-calls-waiting network. 0 when no episode completed.
    pub fn time_to_recover_mean(&self) -> f64 {
        if self.recovery_count == 0 {
            0.0
        } else {
            self.recovery_sum / self.recovery_count as f64
        }
    }

    /// Killed calls per fault episode. 0 when no episode was observed.
    pub fn dropped_per_storm(&self) -> f64 {
        if self.storms == 0 {
            0.0
        } else {
            self.dropped as f64 / self.storms as f64
        }
    }

    /// Nearest-rank `p`-th percentile of reroute latency in churn
    /// epochs (fault/repair events waited). Exact for sample values
    /// below 64 (the practical range); 0 with no samples.
    pub fn reroute_latency_events_pct(&self, p: f64) -> u64 {
        self.reroute_hist_events.quantile(p) as u64
    }

    /// Nearest-rank `p`-th percentile of reroute latency in sim-time:
    /// the lower edge of the histogram bucket holding that rank (within
    /// 3.125% below the true sample). 0 with no samples.
    pub fn reroute_latency_time_pct(&self, p: f64) -> f64 {
        self.reroute_hist_time.quantile(p)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The Erlang-B blocking probability of an `m`-server loss system
/// offered `a` erlangs, by the standard recurrence
/// `B(a, k) = a·B(a, k−1) / (k + a·B(a, k−1))`, `B(a, 0) = 1`.
///
/// The low-load sanity reference: a fabric with `m` independent
/// circuits and Poisson arrivals cleared on blocking must reproduce
/// this curve, whatever the holding-time distribution (Erlang-B
/// insensitivity).
pub fn erlang_b(a: f64, m: u32) -> f64 {
    assert!(a >= 0.0, "offered load must be nonnegative");
    let mut b = 1.0;
    for k in 1..=m {
        b = a * b / (k as f64 + a * b);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erlang_b_known_values() {
        // B(a, 0) = 1 for any load; B(0, m) = 0 for m >= 1
        assert_eq!(erlang_b(5.0, 0), 1.0);
        assert_eq!(erlang_b(0.0, 10), 0.0);
        // single server: B = a / (1 + a)
        assert!((erlang_b(1.0, 1) - 0.5).abs() < 1e-12);
        assert!((erlang_b(0.5, 1) - 1.0 / 3.0).abs() < 1e-12);
        // classical table value: B(10 erlangs, 10 servers) ≈ 0.2146
        assert!((erlang_b(10.0, 10) - 0.2146).abs() < 5e-4);
        // monotone in load, anti-monotone in servers
        assert!(erlang_b(2.0, 5) < erlang_b(4.0, 5));
        assert!(erlang_b(4.0, 8) < erlang_b(4.0, 5));
    }

    #[test]
    fn ratios_handle_empty_runs() {
        let m = Metrics::default();
        assert_eq!(m.blocking_probability(), 0.0);
        assert_eq!(m.busy_rejection(), 0.0);
        assert_eq!(m.drop_rate(), 0.0);
        assert_eq!(m.mean_path_len(), 0.0);
        assert_eq!(m.carried_erlangs(), 0.0);
        assert_eq!(m.mean_reroute_latency_events(), 0.0);
    }

    #[test]
    fn recovery_metrics() {
        let mut m = Metrics {
            dropped: 12,
            storms: 4,
            recovery_sum: 6.0,
            recovery_count: 3,
            recovery_max: 4.0,
            ..Metrics::default()
        };
        for s in [5, 1, 3, 2, 4] {
            m.reroute_hist_events.record(s as f64);
        }
        for s in [0.5, 0.1, 0.3, 0.2, 0.4] {
            m.reroute_hist_time.record(s);
        }
        assert!((m.time_to_recover_mean() - 2.0).abs() < 1e-12);
        assert!((m.dropped_per_storm() - 3.0).abs() < 1e-12);
        // nearest rank over 5 samples: p50 → rank 3, p99 → rank 5 —
        // exact, because the samples are small integers.
        assert_eq!(m.reroute_latency_events_pct(50.0), 3);
        assert_eq!(m.reroute_latency_events_pct(99.0), 5);
        // Continuous samples come back as their bucket's lower edge:
        // within 1/32 below the true nearest-rank sample.
        for (p, exact) in [(50.0, 0.3), (99.0, 0.5)] {
            let got = m.reroute_latency_time_pct(p);
            assert!(
                got <= exact && got >= exact * (1.0 - 1.0 / 32.0),
                "p{p}: {got}"
            );
        }
        // Powers of two are bucket edges, hence exact.
        assert_eq!(m.reroute_latency_time_pct(99.0), 0.5);
        // empty-sample / zero-count cases fall back to 0
        let z = Metrics::default();
        assert_eq!(z.time_to_recover_mean(), 0.0);
        assert_eq!(z.dropped_per_storm(), 0.0);
        assert_eq!(z.reroute_latency_events_pct(99.0), 0);
        assert_eq!(z.reroute_latency_time_pct(99.0), 0.0);
    }

    #[test]
    fn derived_rates() {
        let m = Metrics {
            offered: 100,
            connected: 80,
            blocked: 15,
            rejected_busy: 5,
            abandoned: 8,
            rerouted: 4,
            reroute_latency_events: 6,
            total_path_len: 240,
            active_time: 50.0,
            measured_time: 25.0,
            stage_busy_time: vec![12.5],
            ..Metrics::default()
        };
        assert!((m.blocking_probability() - 0.15).abs() < 1e-12);
        assert!((m.busy_rejection() - 0.05).abs() < 1e-12);
        assert!((m.drop_rate() - 0.1).abs() < 1e-12);
        assert!((m.mean_path_len() - 3.0).abs() < 1e-12);
        assert!((m.carried_erlangs() - 2.0).abs() < 1e-12);
        assert!((m.stage_utilisation(0, 2) - 0.25).abs() < 1e-12);
        assert!((m.mean_reroute_latency_events() - 1.5).abs() < 1e-12);
    }
}
