//! JSON reports: per-seed rows plus cross-seed aggregates.
//!
//! The writer is hand-rolled (no serde in the offline container) and
//! deterministic: fixed key order, Rust's shortest-round-trip float
//! formatting, `\n` separators — a fixed `(scenario, seeds)` pair
//! renders a byte-identical report on every run, which
//! `tests/determinism.rs` pins.

use crate::engine::SeedOutcome;
use crate::fabric::Fabric;
use crate::scenario::Scenario;

/// A finished sweep, ready to render.
#[derive(Clone, Debug)]
pub struct Report {
    /// The scenario that produced the sweep.
    pub scenario: Scenario,
    /// Fabric label (family and size actually built).
    pub fabric_label: String,
    /// Switch count of the fabric.
    pub fabric_switches: usize,
    /// Terminal count of the fabric.
    pub fabric_terminals: usize,
    /// Vertex count of each stage (utilisation denominators).
    pub stage_sizes: Vec<usize>,
    /// One outcome per seed, in seed order.
    pub outcomes: Vec<SeedOutcome>,
}

/// Mean and sample standard deviation of `xs`.
fn mean_std(xs: impl Iterator<Item = f64> + Clone) -> (f64, f64) {
    let n = xs.clone().count();
    if n == 0 {
        return (0.0, 0.0);
    }
    let mean = xs.clone().sum::<f64>() / n as f64;
    if n == 1 {
        return (mean, 0.0);
    }
    let var = xs.map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
    (mean, var.sqrt())
}

fn push_kv(out: &mut String, indent: &str, key: &str, value: &str, last: bool) {
    out.push_str(indent);
    out.push('"');
    out.push_str(key);
    out.push_str("\": ");
    out.push_str(value);
    if !last {
        out.push(',');
    }
    out.push('\n');
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl Report {
    /// Assembles a report from a scenario, the fabric it built and the
    /// seed outcomes. (The fabric is passed in rather than rebuilt from
    /// the spec — for 𝒩 a rebuild re-runs the whole expander
    /// construction.)
    pub fn new(scenario: Scenario, fabric: &Fabric, outcomes: Vec<SeedOutcome>) -> Report {
        let stage_sizes = (0..fabric.net().num_stages())
            .map(|s| {
                let r = fabric.net().stage_range(s);
                (r.end - r.start) as usize
            })
            .collect();
        Report {
            fabric_label: fabric.label(),
            fabric_switches: fabric.net().size(),
            fabric_terminals: fabric.terminals(),
            stage_sizes,
            scenario,
            outcomes,
        }
    }

    /// Mean blocking probability across seeds.
    pub fn mean_blocking(&self) -> f64 {
        mean_std(
            self.outcomes
                .iter()
                .map(|o| o.metrics.blocking_probability()),
        )
        .0
    }

    /// Renders the deterministic JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        let c = &self.scenario.config;
        out.push_str("{\n");
        out.push_str("  \"scenario\": {\n");
        push_kv(
            &mut out,
            "    ",
            "network",
            &json_str(&self.scenario.fabric.to_spec_string()),
            false,
        );
        push_kv(
            &mut out,
            "    ",
            "fabric",
            &json_str(&self.fabric_label),
            false,
        );
        push_kv(
            &mut out,
            "    ",
            "switches",
            &self.fabric_switches.to_string(),
            false,
        );
        push_kv(
            &mut out,
            "    ",
            "terminals",
            &self.fabric_terminals.to_string(),
            false,
        );
        push_kv(
            &mut out,
            "    ",
            "pattern",
            &json_str(&format!("{:?}", c.pattern)),
            false,
        );
        push_kv(
            &mut out,
            "    ",
            "holding",
            &json_str(&format!("{:?}", c.holding)),
            false,
        );
        push_kv(
            &mut out,
            "    ",
            "arrival_rate",
            &c.arrival_rate.to_string(),
            false,
        );
        push_kv(
            &mut out,
            "    ",
            "offered_erlangs",
            &(c.arrival_rate * c.holding.mean()).to_string(),
            false,
        );
        push_kv(
            &mut out,
            "    ",
            "fault_rate",
            &c.fault_rate.to_string(),
            false,
        );
        push_kv(
            &mut out,
            "    ",
            "fault_open_share",
            &c.fault_open_share.to_string(),
            false,
        );
        push_kv(&mut out, "    ", "mttr", &c.mttr.to_string(), false);
        push_kv(
            &mut out,
            "    ",
            "faults",
            &json_str(&c.faults.to_spec_string()),
            false,
        );
        push_kv(
            &mut out,
            "    ",
            "retry",
            &json_str(&c.retry.to_spec_string()),
            false,
        );
        push_kv(
            &mut out,
            "    ",
            "reroute",
            &json_str(c.reroute.to_spec_string()),
            false,
        );
        push_kv(&mut out, "    ", "duration", &c.duration.to_string(), false);
        push_kv(&mut out, "    ", "warmup", &c.warmup.to_string(), false);
        push_kv(
            &mut out,
            "    ",
            "seed_base",
            &self.scenario.seed_base.to_string(),
            false,
        );
        push_kv(
            &mut out,
            "    ",
            "seeds",
            &self.scenario.seeds.to_string(),
            true,
        );
        out.push_str("  },\n");

        out.push_str("  \"per_seed\": [\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            let m = &o.metrics;
            out.push_str("    {\n");
            push_kv(&mut out, "      ", "seed", &o.seed.to_string(), false);
            push_kv(&mut out, "      ", "events", &o.events.to_string(), false);
            push_kv(
                &mut out,
                "      ",
                "fingerprint",
                &json_str(&format!("{:#018x}", o.fingerprint)),
                false,
            );
            push_kv(&mut out, "      ", "offered", &m.offered.to_string(), false);
            push_kv(
                &mut out,
                "      ",
                "connected",
                &m.connected.to_string(),
                false,
            );
            push_kv(&mut out, "      ", "blocked", &m.blocked.to_string(), false);
            push_kv(
                &mut out,
                "      ",
                "rejected_busy",
                &m.rejected_busy.to_string(),
                false,
            );
            push_kv(
                &mut out,
                "      ",
                "completed",
                &m.completed.to_string(),
                false,
            );
            push_kv(&mut out, "      ", "dropped", &m.dropped.to_string(), false);
            push_kv(
                &mut out,
                "      ",
                "rerouted",
                &m.rerouted.to_string(),
                false,
            );
            push_kv(&mut out, "      ", "moved", &m.moved.to_string(), false);
            push_kv(
                &mut out,
                "      ",
                "abandoned",
                &m.abandoned.to_string(),
                false,
            );
            push_kv(&mut out, "      ", "faults", &m.faults.to_string(), false);
            push_kv(&mut out, "      ", "repairs", &m.repairs.to_string(), false);
            push_kv(&mut out, "      ", "storms", &m.storms.to_string(), false);
            push_kv(&mut out, "      ", "shed", &m.shed.to_string(), false);
            push_kv(
                &mut out,
                "      ",
                "degraded_time",
                &m.degraded_time.to_string(),
                false,
            );
            push_kv(
                &mut out,
                "      ",
                "recovery_episodes",
                &m.recovery_count.to_string(),
                false,
            );
            push_kv(
                &mut out,
                "      ",
                "time_to_recover",
                &m.time_to_recover_mean().to_string(),
                false,
            );
            push_kv(
                &mut out,
                "      ",
                "dropped_per_storm",
                &m.dropped_per_storm().to_string(),
                false,
            );
            push_kv(
                &mut out,
                "      ",
                "blocking_probability",
                &m.blocking_probability().to_string(),
                false,
            );
            push_kv(
                &mut out,
                "      ",
                "busy_rejection",
                &m.busy_rejection().to_string(),
                false,
            );
            push_kv(
                &mut out,
                "      ",
                "drop_rate",
                &m.drop_rate().to_string(),
                false,
            );
            push_kv(
                &mut out,
                "      ",
                "mean_path_len",
                &m.mean_path_len().to_string(),
                false,
            );
            push_kv(
                &mut out,
                "      ",
                "max_path_len",
                &m.max_path_len.to_string(),
                false,
            );
            push_kv(
                &mut out,
                "      ",
                "carried_erlangs",
                &m.carried_erlangs().to_string(),
                false,
            );
            push_kv(
                &mut out,
                "      ",
                "mean_reroute_latency_events",
                &m.mean_reroute_latency_events().to_string(),
                false,
            );
            push_kv(
                &mut out,
                "      ",
                "reroute_latency_events_p50",
                &m.reroute_latency_events_pct(50.0).to_string(),
                false,
            );
            push_kv(
                &mut out,
                "      ",
                "reroute_latency_events_p99",
                &m.reroute_latency_events_pct(99.0).to_string(),
                false,
            );
            push_kv(
                &mut out,
                "      ",
                "reroute_latency_time_p50",
                &m.reroute_latency_time_pct(50.0).to_string(),
                false,
            );
            push_kv(
                &mut out,
                "      ",
                "reroute_latency_time_p99",
                &m.reroute_latency_time_pct(99.0).to_string(),
                false,
            );
            push_kv(
                &mut out,
                "      ",
                "reroute_latency_events_p999",
                &m.reroute_latency_events_pct(99.9).to_string(),
                false,
            );
            push_kv(
                &mut out,
                "      ",
                "reroute_latency_time_p999",
                &m.reroute_latency_time_pct(99.9).to_string(),
                false,
            );
            push_kv(
                &mut out,
                "      ",
                "setup_cost_p50",
                &m.setup_cost_hist.quantile(50.0).to_string(),
                false,
            );
            push_kv(
                &mut out,
                "      ",
                "setup_cost_p99",
                &m.setup_cost_hist.quantile(99.0).to_string(),
                false,
            );
            push_kv(
                &mut out,
                "      ",
                "path_len_p50",
                &m.path_len_hist.quantile(50.0).to_string(),
                false,
            );
            push_kv(
                &mut out,
                "      ",
                "path_len_p99",
                &m.path_len_hist.quantile(99.0).to_string(),
                false,
            );
            let utilisation: Vec<String> = (0..m.stage_busy_time.len())
                .map(|s| m.stage_utilisation(s, self.stage_sizes[s]).to_string())
                .collect();
            push_kv(
                &mut out,
                "      ",
                "stage_utilisation",
                &format!("[{}]", utilisation.join(", ")),
                false,
            );
            let occupancy_p99: Vec<String> = m
                .stage_occupancy_hist
                .iter()
                .map(|h| h.quantile(99.0).to_string())
                .collect();
            push_kv(
                &mut out,
                "      ",
                "stage_occupancy_p99",
                &format!("[{}]", occupancy_p99.join(", ")),
                false,
            );
            let buckets: Vec<String> = m
                .buckets
                .iter()
                .map(|b| {
                    format!(
                        "{{\"offered\": {}, \"connected\": {}, \"blocked\": {}, \"dropped\": {}}}",
                        b.offered, b.connected, b.blocked, b.dropped
                    )
                })
                .collect();
            push_kv(
                &mut out,
                "      ",
                "buckets",
                &format!("[{}]", buckets.join(", ")),
                true,
            );
            out.push_str(if i + 1 == self.outcomes.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ],\n");

        out.push_str("  \"aggregate\": {\n");
        let stats = [
            (
                "blocking_probability",
                mean_std(
                    self.outcomes
                        .iter()
                        .map(|o| o.metrics.blocking_probability()),
                ),
            ),
            (
                "busy_rejection",
                mean_std(self.outcomes.iter().map(|o| o.metrics.busy_rejection())),
            ),
            (
                "drop_rate",
                mean_std(self.outcomes.iter().map(|o| o.metrics.drop_rate())),
            ),
            (
                "carried_erlangs",
                mean_std(self.outcomes.iter().map(|o| o.metrics.carried_erlangs())),
            ),
            (
                "mean_path_len",
                mean_std(self.outcomes.iter().map(|o| o.metrics.mean_path_len())),
            ),
            (
                "time_to_recover",
                mean_std(
                    self.outcomes
                        .iter()
                        .map(|o| o.metrics.time_to_recover_mean()),
                ),
            ),
            (
                "dropped_per_storm",
                mean_std(self.outcomes.iter().map(|o| o.metrics.dropped_per_storm())),
            ),
        ];
        for (name, (mean, std)) in stats.iter() {
            push_kv(
                &mut out,
                "    ",
                name,
                &format!("{{\"mean\": {mean}, \"std\": {std}}}"),
                false,
            );
        }
        // Cross-seed latency quantiles from the *merged* histograms —
        // exact (not a mean of per-seed quantiles) and byte-identical
        // however the seeds were partitioned over workers.
        let mut events = ft_obs::Hist::new();
        let mut time = ft_obs::Hist::new();
        for o in &self.outcomes {
            events.merge(&o.metrics.reroute_hist_events);
            time.merge(&o.metrics.reroute_hist_time);
        }
        push_kv(
            &mut out,
            "    ",
            "reroute_latency_quantiles",
            &format!(
                "{{\"events_p50\": {}, \"events_p99\": {}, \"events_p999\": {}, \
                 \"time_p50\": {}, \"time_p99\": {}, \"time_p999\": {}}}",
                events.quantile(50.0) as u64,
                events.quantile(99.0) as u64,
                events.quantile(99.9) as u64,
                time.quantile(50.0),
                time.quantile(99.0),
                time.quantile(99.9),
            ),
            true,
        );
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::run_sweep;

    fn tiny_report() -> Report {
        let scenario = Scenario::parse(
            "network = clos-strict 2 2\narrival_rate = 3\nduration = 20\nseeds = 2\nbuckets = 2\n",
        )
        .unwrap();
        let fabric = scenario.fabric.build();
        let outcomes = run_sweep(&fabric, &scenario.config, &scenario.seed_list(), 1);
        Report::new(scenario, &fabric, outcomes)
    }

    #[test]
    fn json_is_reproducible_and_wellformed() {
        let a = tiny_report().to_json();
        let b = tiny_report().to_json();
        assert_eq!(a, b);
        // cheap structural sanity without a JSON parser: balanced
        // braces/brackets outside of strings, expected keys present
        let depth = a.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
        for key in [
            "\"scenario\"",
            "\"per_seed\"",
            "\"aggregate\"",
            "\"fingerprint\"",
            "\"blocking_probability\"",
            "\"stage_utilisation\"",
            "\"buckets\"",
            "\"faults\": \"iid\"",
            "\"retry\": \"on-repair\"",
            "\"reroute\": \"greedy\"",
            "\"moved\"",
            "\"storms\"",
            "\"degraded_time\"",
            "\"recovery_episodes\"",
            "\"time_to_recover\"",
            "\"dropped_per_storm\"",
            "\"reroute_latency_events_p99\"",
            "\"reroute_latency_time_p50\"",
            "\"reroute_latency_events_p999\"",
            "\"setup_cost_p50\"",
            "\"path_len_p99\"",
            "\"stage_occupancy_p99\"",
            "\"reroute_latency_quantiles\"",
        ] {
            assert!(a.contains(key), "missing {key} in\n{a}");
        }
        assert_eq!(a.matches("\"seed\":").count(), 2);
    }

    #[test]
    fn string_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std([1.0, 3.0].into_iter());
        assert_eq!(m, 2.0);
        assert!((s - std::f64::consts::SQRT_2).abs() < 1e-12);
        let (m, s) = mean_std(std::iter::empty());
        assert_eq!((m, s), (0.0, 0.0));
        let (m, s) = mean_std([5.0].into_iter());
        assert_eq!((m, s), (5.0, 0.0));
    }
}
