//! Property-based tests for the failure model and reliability theory.

use ft_failure::contraction::{contract, contraction_classes};
use ft_failure::edge_replace::substitute;
use ft_failure::onenet::{construct_onenet, quad_map};
use ft_failure::reliability::{bridge, single_switch, Connectivity, FailureProbs};
use ft_failure::sp::SpNetwork;
use ft_failure::{FailureInstance, FailureModel, Hammock, SwitchState};
use ft_graph::gen::{random_dag, rng};
use ft_graph::traversal::{bfs, Direction};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sampling is deterministic per seed and respects the edge count.
    #[test]
    fn sampling_deterministic(seed in 0u64..50_000, m in 0usize..5000,
                              eps_mil in 0u32..400_000) {
        let eps = eps_mil as f64 / 1_000_000.0;
        let model = FailureModel::symmetric(eps);
        let a = FailureInstance::sample(&model, &mut rng(seed), m);
        let b = FailureInstance::sample(&model, &mut rng(seed), m);
        prop_assert_eq!(a.len(), m);
        for e in 0..m {
            let e = ft_graph::ids::EdgeId::from(e);
            prop_assert_eq!(a.state(e), b.state(e));
        }
    }

    /// Contraction classes agree with BFS over closed edges only.
    #[test]
    fn contraction_matches_closed_bfs(seed in 0u64..20_000) {
        let mut r = rng(seed);
        let g = random_dag(&mut r, 30, 60);
        let model = FailureModel::new(0.1, 0.3);
        let inst = FailureInstance::sample(&model, &mut r, g.num_edges());
        let mut uf = contraction_classes(&g, &inst);
        // BFS restricted to closed edges, undirected
        let closed_ok = |e: ft_graph::ids::EdgeId| inst.is_closed(e);
        for v in g.vertices() {
            let b = bfs(&g, &[v], Direction::Undirected, closed_ok, |_| true);
            for w in g.vertices() {
                prop_assert_eq!(b.reached(w), uf.same(v.0, w.0),
                    "class mismatch for {:?} {:?}", v, w);
            }
        }
    }

    /// The contracted network preserves normal-edge counts between
    /// distinct classes and never exceeds the original edge count.
    #[test]
    fn contract_structure(seed in 0u64..20_000) {
        let mut r = rng(seed);
        let g = random_dag(&mut r, 40, 100);
        let model = FailureModel::new(0.05, 0.2);
        let inst = FailureInstance::sample(&model, &mut r, g.num_edges());
        let c = contract(&g, &inst);
        prop_assert!(c.graph.num_vertices() <= g.num_vertices());
        prop_assert!(c.graph.num_edges() <= g.num_edges());
        prop_assert_eq!(c.edge_origin.len(), c.graph.num_edges());
        for &orig in &c.edge_origin {
            prop_assert!(inst.is_normal(orig));
        }
    }

    /// Substitution arithmetic: edges multiply by the gadget size,
    /// original vertex ids are preserved.
    #[test]
    fn substitution_arithmetic(seed in 0u64..20_000) {
        let mut r = rng(seed);
        let g = random_dag(&mut r, 20, 40);
        let gadget = bridge();
        let s = substitute(&g, &gadget);
        prop_assert_eq!(s.graph.num_edges(),
                        g.num_edges() * gadget.graph.num_edges());
        prop_assert_eq!(s.edge_origin.len(), s.graph.num_edges());
        // interior vertices added per original edge
        let interior = gadget.graph.num_vertices() - 2;
        prop_assert_eq!(s.graph.num_vertices(),
                        g.num_vertices() + interior * g.num_edges());
    }

    /// Series-parallel failure probabilities are valid probabilities,
    /// monotone in ε, and degrade toward the respective limits.
    #[test]
    fn sp_probs_valid_and_monotone(l in 1usize..6, w in 1usize..6,
                                   e1 in 1u32..400, e2 in 1u32..400) {
        let (lo, hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
        let (lo, hi) = (lo as f64 / 1000.0, hi as f64 / 1000.0);
        let net = SpNetwork::ladder(l, w);
        let a = net.failure_probs(&FailureModel::symmetric(lo));
        let b = net.failure_probs(&FailureModel::symmetric(hi));
        for p in [a, b] {
            prop_assert!((0.0..=1.0).contains(&p.p_open));
            prop_assert!((0.0..=1.0).contains(&p.p_short));
        }
        prop_assert!(a.p_open <= b.p_open + 1e-12);
        prop_assert!(a.p_short <= b.p_short + 1e-12);
    }

    /// The quad map squares the short mode and keeps probabilities in
    /// range (the amplification engine of Proposition 1).
    #[test]
    fn quad_map_contracts(po in 0u32..200, ps in 0u32..200) {
        let p = FailureProbs { p_open: po as f64 / 1000.0, p_short: ps as f64 / 1000.0 };
        let q = quad_map(p);
        prop_assert!((0.0..=1.0).contains(&q.p_open));
        prop_assert!((0.0..=1.0).contains(&q.p_short));
        // short mode strictly squares then doubles-parallel:
        // q.short = 1-(1-s^2)^2 ≤ 2 s^2
        prop_assert!(q.p_short <= 2.0 * p.p_short * p.p_short + 1e-12);
    }

    /// Hammock analytic bounds are monotone in both dimensions'
    /// failure effect: more stages ⇒ larger open bound; more rows ⇒
    /// smaller open bound.
    #[test]
    fn hammock_bound_shape(l in 2usize..20, w in 2usize..20) {
        let model = FailureModel::symmetric(0.01);
        let base = Hammock::new(l, w).bounds(&model);
        let wider = Hammock::new(l + 1, w).bounds(&model);
        let longer = Hammock::new(l, w + 1).bounds(&model);
        prop_assert!(wider.p_open <= base.p_open + 1e-12);
        prop_assert!(longer.p_open >= base.p_open - 1e-12);
        prop_assert!(wider.p_short >= base.p_short - 1e-12);
    }

    /// Exact enumeration and SP calculus agree on the single switch.
    #[test]
    fn exact_vs_sp_single_switch(e1 in 0u32..400, e2 in 0u32..400) {
        prop_assume!(e1 + e2 <= 900);
        let model = FailureModel::new(e1 as f64 / 1000.0, e2 as f64 / 1000.0);
        let sw = single_switch();
        let exact = sw.exact_failure_probs(&model, Connectivity::Undirected);
        prop_assert!((exact.p_open - model.eps_open).abs() < 1e-12);
        prop_assert!((exact.p_short - model.eps_close).abs() < 1e-12);
    }

    /// Every constructed 1-network certifies below its target, across
    /// the (ε, ε′) plane.
    #[test]
    fn onenet_always_certifies(ei in 1u32..40, ti in 2u32..6) {
        let eps = ei as f64 / 100.0;      // 0.01 .. 0.39
        let target = 10f64.powi(-(ti as i32)); // 1e-2 .. 1e-5
        prop_assume!(target < eps);
        let net = construct_onenet(eps, target);
        prop_assert!(net.certified.p_open < target);
        prop_assert!(net.certified.p_short < target);
        prop_assert!(net.size() >= 1);
    }

    /// Perfect instances never mark anything faulty; all-open
    /// instances mark every touched vertex.
    #[test]
    fn faulty_vertex_extremes(seed in 0u64..10_000) {
        let mut r = rng(seed);
        let g = random_dag(&mut r, 25, 50);
        let perfect = FailureInstance::perfect(g.num_edges());
        prop_assert!(perfect.faulty_vertices(&g).iter().all(|&f| !f));
        let broken = FailureInstance::from_states(
            vec![SwitchState::Open; g.num_edges()]);
        let faulty = broken.faulty_vertices(&g);
        for v in g.vertices() {
            prop_assert_eq!(faulty[v.index()], g.degree(v) > 0);
        }
    }
}
