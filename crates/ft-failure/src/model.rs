//! The random switch failure model (§1, §3).
//!
//! Every switch (edge) is independently in one of three states:
//!
//! * **open failure** with probability ε₁ — the switch is permanently off;
//!   the edge *ceases to exist*;
//! * **closed failure** with probability ε₂ — the switch is permanently
//!   on; the edge's endpoints *contract to one vertex*;
//! * **normal** otherwise — the switch functions correctly.
//!
//! The paper takes ε₁ = ε₂ = ε for notational simplicity; the model here
//! keeps them separate (the invariance arguments of §3 need asymmetric
//! instances).

use rand::rngs::SmallRng;
use rand::Rng;

/// State of a single switch in a failure instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SwitchState {
    /// Functioning correctly: conducts when on, isolates when off.
    Normal = 0,
    /// Open failure: permanently off (edge removed).
    Open = 1,
    /// Closed failure: permanently on (endpoints contracted).
    Closed = 2,
}

/// Failure probabilities of the model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FailureModel {
    /// Open-failure probability ε₁ ∈ [0, ½).
    pub eps_open: f64,
    /// Closed-failure probability ε₂ ∈ [0, ½).
    pub eps_close: f64,
}

impl FailureModel {
    /// Symmetric model ε₁ = ε₂ = ε, the paper's default.
    pub fn symmetric(eps: f64) -> Self {
        FailureModel {
            eps_open: eps,
            eps_close: eps,
        }
    }

    /// Creates a model, validating the probability ranges.
    ///
    /// # Panics
    /// Panics unless `0 ≤ ε₁, ε₂` and `ε₁ + ε₂ ≤ 1`.
    pub fn new(eps_open: f64, eps_close: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&eps_open)
                && (0.0..=1.0).contains(&eps_close)
                && eps_open + eps_close <= 1.0,
            "invalid failure probabilities ({eps_open}, {eps_close})"
        );
        FailureModel {
            eps_open,
            eps_close,
        }
    }

    /// A fault-free model (every switch normal) — useful as a baseline.
    pub fn perfect() -> Self {
        FailureModel {
            eps_open: 0.0,
            eps_close: 0.0,
        }
    }

    /// Total failure probability ε₁ + ε₂ (the paper's `2ε`).
    pub fn total(&self) -> f64 {
        self.eps_open + self.eps_close
    }

    /// Samples the state of one switch.
    #[inline]
    pub fn sample_one(&self, rng: &mut SmallRng) -> SwitchState {
        let u: f64 = rng.random();
        if u < self.eps_open {
            SwitchState::Open
        } else if u < self.eps_open + self.eps_close {
            SwitchState::Closed
        } else {
            SwitchState::Normal
        }
    }

    /// Samples states for `m` switches into `out` (resized to `m`).
    ///
    /// For small total failure probability this uses geometric gap
    /// sampling: only the failed positions are visited, so a trial on a
    /// 10⁷-edge network with ε = 10⁻⁶ costs ~tens of RNG draws, not 10⁷.
    pub fn sample_into(&self, rng: &mut SmallRng, m: usize, out: &mut Vec<SwitchState>) {
        out.clear();
        out.resize(m, SwitchState::Normal);
        let p = self.total();
        if p <= 0.0 {
            return;
        }
        if p >= 0.25 {
            // dense regime: per-edge draw is cheaper than the log() calls
            for s in out.iter_mut() {
                *s = self.sample_one(rng);
            }
            return;
        }
        // geometric gaps: position of next failure
        let open_share = self.eps_open / p;
        let ln_q = (1.0 - p).ln();
        let mut i = 0usize;
        loop {
            let u: f64 = rng.random();
            // skip ~ Geometric(p): number of non-failures before the next failure
            let skip = (u.ln() / ln_q).floor();
            if skip >= (m - i) as f64 {
                break;
            }
            i += skip as usize;
            out[i] = if rng.random::<f64>() < open_share {
                SwitchState::Open
            } else {
                SwitchState::Closed
            };
            i += 1;
            if i >= m {
                break;
            }
        }
    }

    /// Samples a fresh state vector for `m` switches.
    pub fn sample(&self, rng: &mut SmallRng, m: usize) -> Vec<SwitchState> {
        let mut out = Vec::new();
        self.sample_into(rng, m, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_graph::gen::rng;

    #[test]
    fn symmetric_model() {
        let m = FailureModel::symmetric(0.1);
        assert_eq!(m.eps_open, 0.1);
        assert_eq!(m.eps_close, 0.1);
        assert!((m.total() - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid failure probabilities")]
    fn invalid_model_rejected() {
        FailureModel::new(0.7, 0.7);
    }

    #[test]
    fn perfect_model_never_fails() {
        let m = FailureModel::perfect();
        let mut r = rng(1);
        let states = m.sample(&mut r, 1000);
        assert!(states.iter().all(|&s| s == SwitchState::Normal));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = FailureModel::symmetric(0.3);
        let a = m.sample(&mut rng(7), 500);
        let b = m.sample(&mut rng(7), 500);
        assert_eq!(a, b);
    }

    #[test]
    fn dense_frequencies_match() {
        // dense regime (total ≥ 0.25)
        let m = FailureModel::new(0.2, 0.15);
        let mut r = rng(42);
        let n = 200_000;
        let states = m.sample(&mut r, n);
        let open = states.iter().filter(|&&s| s == SwitchState::Open).count() as f64 / n as f64;
        let closed = states.iter().filter(|&&s| s == SwitchState::Closed).count() as f64 / n as f64;
        assert!((open - 0.2).abs() < 0.01, "open rate {open}");
        assert!((closed - 0.15).abs() < 0.01, "closed rate {closed}");
    }

    #[test]
    fn sparse_frequencies_match() {
        // sparse regime (geometric skipping)
        let m = FailureModel::new(0.01, 0.02);
        let mut r = rng(43);
        let n = 1_000_000;
        let states = m.sample(&mut r, n);
        let open = states.iter().filter(|&&s| s == SwitchState::Open).count() as f64 / n as f64;
        let closed = states.iter().filter(|&&s| s == SwitchState::Closed).count() as f64 / n as f64;
        assert!((open - 0.01).abs() < 0.002, "open rate {open}");
        assert!((closed - 0.02).abs() < 0.002, "closed rate {closed}");
    }

    #[test]
    fn sparse_positions_are_spread() {
        // guard against off-by-one in geometric skipping: failures must be
        // able to land on the first and last positions
        let m = FailureModel::symmetric(0.05);
        let mut first_hit = false;
        let mut last_hit = false;
        let mut r = rng(44);
        for _ in 0..2000 {
            let states = m.sample(&mut r, 10);
            if states[0] != SwitchState::Normal {
                first_hit = true;
            }
            if states[9] != SwitchState::Normal {
                last_hit = true;
            }
        }
        assert!(first_hit && last_hit);
    }

    #[test]
    fn asymmetric_sparse_split() {
        let m = FailureModel::new(0.03, 0.0);
        let mut r = rng(45);
        let states = m.sample(&mut r, 100_000);
        assert!(states.iter().all(|&s| s != SwitchState::Closed));
        let m = FailureModel::new(0.0, 0.03);
        let states = m.sample(&mut r, 100_000);
        assert!(states.iter().all(|&s| s != SwitchState::Open));
    }

    #[test]
    fn zero_length_sample() {
        let m = FailureModel::symmetric(0.1);
        let mut r = rng(46);
        assert!(m.sample(&mut r, 0).is_empty());
    }
}
