//! The random switch failure model (§1, §3).
//!
//! Every switch (edge) is independently in one of three states:
//!
//! * **open failure** with probability ε₁ — the switch is permanently off;
//!   the edge *ceases to exist*;
//! * **closed failure** with probability ε₂ — the switch is permanently
//!   on; the edge's endpoints *contract to one vertex*;
//! * **normal** otherwise — the switch functions correctly.
//!
//! The paper takes ε₁ = ε₂ = ε for notational simplicity; the model here
//! keeps them separate (the invariance arguments of §3 need asymmetric
//! instances).

use crate::mask::{FailureMask, PER_WORD};
use rand::rngs::SmallRng;
use rand::Rng;

/// State of a single switch in a failure instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SwitchState {
    /// Functioning correctly: conducts when on, isolates when off.
    Normal = 0,
    /// Open failure: permanently off (edge removed).
    Open = 1,
    /// Closed failure: permanently on (endpoints contracted).
    Closed = 2,
}

/// Failure probabilities of the model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FailureModel {
    /// Open-failure probability ε₁ ∈ [0, ½).
    pub eps_open: f64,
    /// Closed-failure probability ε₂ ∈ [0, ½).
    pub eps_close: f64,
}

impl FailureModel {
    /// Symmetric model ε₁ = ε₂ = ε, the paper's default.
    pub fn symmetric(eps: f64) -> Self {
        FailureModel {
            eps_open: eps,
            eps_close: eps,
        }
    }

    /// Creates a model, validating the probability ranges.
    ///
    /// # Panics
    /// Panics unless `0 ≤ ε₁, ε₂` and `ε₁ + ε₂ ≤ 1`.
    pub fn new(eps_open: f64, eps_close: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&eps_open)
                && (0.0..=1.0).contains(&eps_close)
                && eps_open + eps_close <= 1.0,
            "invalid failure probabilities ({eps_open}, {eps_close})"
        );
        FailureModel {
            eps_open,
            eps_close,
        }
    }

    /// A fault-free model (every switch normal) — useful as a baseline.
    pub fn perfect() -> Self {
        FailureModel {
            eps_open: 0.0,
            eps_close: 0.0,
        }
    }

    /// The static snapshot of a temporal fault process: a switch that
    /// fails at rate `fault_rate` and is repaired at rate `1/mttr` is a
    /// two-state Markov chain whose stationary unavailability is
    /// `u = λ / (λ + 1/mttr) = λ·mttr / (1 + λ·mttr)`; by PASTA an
    /// arrival in the process's steady state observes each switch
    /// failed independently with probability `u`. `open_share` splits
    /// `u` between open and closed failures, mirroring the simulator's
    /// `fault_open_share`.
    ///
    /// This is the cross-validation hook the `ftexp` study runner and
    /// `ft-sim`'s `sim_validation` tests use to compare a discrete-event
    /// blocking estimate against this crate's snapshot machinery.
    ///
    /// # Panics
    /// Panics if `fault_rate < 0`, `mttr <= 0`, or `open_share ∉ [0, 1]`.
    pub fn stationary(fault_rate: f64, mttr: f64, open_share: f64) -> Self {
        assert!(
            fault_rate >= 0.0 && mttr > 0.0 && (0.0..=1.0).contains(&open_share),
            "invalid stationary parameters (λ = {fault_rate}, mttr = {mttr}, \
             open_share = {open_share})"
        );
        let a = fault_rate * mttr;
        let u = a / (1.0 + a);
        FailureModel::new(u * open_share, u * (1.0 - open_share))
    }

    /// Total failure probability ε₁ + ε₂ (the paper's `2ε`).
    pub fn total(&self) -> f64 {
        self.eps_open + self.eps_close
    }

    /// Samples the state of one switch.
    #[inline]
    pub fn sample_one(&self, rng: &mut SmallRng) -> SwitchState {
        let u: f64 = rng.random();
        if u < self.eps_open {
            SwitchState::Open
        } else if u < self.eps_open + self.eps_close {
            SwitchState::Closed
        } else {
            SwitchState::Normal
        }
    }

    /// Total failure probability below which geometric gap sampling
    /// beats the dense word-fill.
    ///
    /// Word-fill costs ~½ an RNG draw plus a few integer ops per switch;
    /// a geometric gap costs two `f64` draws, a `ln` and a division per
    /// *failure*, i.e. ~15–20× a word-fill switch. The breakeven is
    /// therefore around p ≈ 1/16. The previous cutoff of 0.25 sent
    /// ε ≈ 0.1 instances (total p = 0.2) down a per-switch `f64` path
    /// that cost 2.6 ms per 10⁶-edge trial.
    ///
    /// The bit-sliced sampler
    /// ([`sample_sliced_into`](Self::sample_sliced_into)) keys off the
    /// **same constant**: below it each of the 64 lanes replicates this
    /// sparse geometric-gap path bit-identically (lane-major), at or
    /// above it the block switches to the MSB-first lane-comparator
    /// fill. Keeping one cutoff means "which regime am I in" has a
    /// single answer for a given model, whichever sampler runs.
    pub const DENSE_CUTOFF: f64 = 1.0 / 16.0;

    /// Samples states for `m` switches into the packed mask `out`
    /// (reset to `m` switches).
    ///
    /// This is the **scalar** path: one instance per call, used by the
    /// per-trial drivers, the `trials % 64` tails of the sliced drivers,
    /// and the scalar-fallback replay of undecided lanes. The
    /// **bit-sliced** path
    /// ([`sample_sliced_into`](Self::sample_sliced_into)) samples 64
    /// instances at once into a `SlicedFailureMask`; in the sparse
    /// regime its lane *i* is bit-identical to the *i*-th consecutive
    /// call of this function on the same RNG.
    ///
    /// Two regimes:
    ///
    /// * **sparse** (`total < DENSE_CUTOFF`): geometric gap sampling —
    ///   only the failed positions are visited, so a trial on a
    ///   10⁷-edge network with ε = 10⁻⁶ costs ~tens of RNG draws, not
    ///   10⁷. The draw sequence is bit-identical to the
    ///   [`Self::sample_states`] reference, which is what pins the
    ///   golden fingerprints in `tests/determinism.rs`.
    /// * **dense**: whole-word fill — each `u64` draw decides two
    ///   switches by 32-bit threshold comparison (quantisation bias
    ///   < 2⁻³², far below Monte Carlo resolution) and 32 switches land
    ///   in one packed store. The sliced sampler's dense regime uses a
    ///   different (also pinned) stream — equivalence between the two
    ///   samplers is distributional there, not bitwise.
    pub fn sample_into(&self, rng: &mut SmallRng, m: usize, out: &mut FailureMask) {
        out.reset(m);
        let p = self.total();
        if p <= 0.0 {
            return;
        }
        if p >= Self::DENSE_CUTOFF {
            // Dense word-fill. Thresholds on a 2³² lattice: u < t_open ⇒
            // open, t_open ≤ u < t_fail ⇒ closed, else normal (the same
            // ordering as `sample_one`). Each u64 draw decides two
            // switches branch-free; a full word of 32 switches is 16
            // draws and one store.
            let scale = 4294967296.0; // 2^32
            let t_open = (self.eps_open * scale) as u64;
            let t_fail = (p * scale).min(scale) as u64;
            // branchless code for one lane: open = 01, closed = 10,
            // normal = 00 (b ≥ a always since t_open ≤ t_fail)
            let code = |u: u64| -> u64 {
                let a = (u < t_open) as u64;
                let b = (u < t_fail) as u64;
                2 * b - a
            };
            let full_words = m / PER_WORD;
            for w_out in out.words.iter_mut().take(full_words) {
                let mut w = 0u64;
                for k in 0..PER_WORD as u64 / 2 {
                    let r64 = rng.random::<u64>();
                    let pair = code(r64 & 0xFFFF_FFFF) | (code(r64 >> 32) << 2);
                    w |= pair << (4 * k);
                }
                *w_out = w;
            }
            // tail word (m not a multiple of 32)
            let rem = m - full_words * PER_WORD;
            if rem > 0 {
                let mut w = 0u64;
                let mut r64 = 0u64;
                for j in 0..rem {
                    let u = if j & 1 == 0 {
                        r64 = rng.random::<u64>();
                        r64 & 0xFFFF_FFFF
                    } else {
                        r64 >> 32
                    };
                    w |= code(u) << (2 * j);
                }
                out.words[full_words] = w;
            }
            return;
        }
        // geometric gaps: position of next failure
        let open_share = self.eps_open / p;
        let ln_q = (1.0 - p).ln();
        let mut i = 0usize;
        loop {
            let u: f64 = rng.random();
            // skip ~ Geometric(p): number of non-failures before the next failure
            let skip = (u.ln() / ln_q).floor();
            if skip >= (m - i) as f64 {
                break;
            }
            i += skip as usize;
            let s = if rng.random::<f64>() < open_share {
                SwitchState::Open
            } else {
                SwitchState::Closed
            };
            out.set(i, s);
            i += 1;
            if i >= m {
                break;
            }
        }
    }

    /// Samples a fresh packed mask for `m` switches.
    pub fn sample_mask(&self, rng: &mut SmallRng, m: usize) -> FailureMask {
        let mut out = FailureMask::new(0);
        self.sample_into(rng, m, &mut out);
        out
    }

    /// Reference sampler producing an unpacked state vector.
    ///
    /// Kept as the slow-but-obvious implementation that the packed
    /// [`Self::sample_into`] is differentially tested against: for
    /// `total() < DENSE_CUTOFF` the two consume the RNG identically and
    /// produce the same states. (In the dense regime the streams differ —
    /// the reference draws one `f64` per switch — but the distributions
    /// agree.)
    pub fn sample_states_into(&self, rng: &mut SmallRng, m: usize, out: &mut Vec<SwitchState>) {
        out.clear();
        out.resize(m, SwitchState::Normal);
        let p = self.total();
        if p <= 0.0 {
            return;
        }
        if p >= Self::DENSE_CUTOFF {
            // dense regime: per-edge draw is cheaper than the log() calls
            for s in out.iter_mut() {
                *s = self.sample_one(rng);
            }
            return;
        }
        // geometric gaps: position of next failure
        let open_share = self.eps_open / p;
        let ln_q = (1.0 - p).ln();
        let mut i = 0usize;
        loop {
            let u: f64 = rng.random();
            // skip ~ Geometric(p): number of non-failures before the next failure
            let skip = (u.ln() / ln_q).floor();
            if skip >= (m - i) as f64 {
                break;
            }
            i += skip as usize;
            out[i] = if rng.random::<f64>() < open_share {
                SwitchState::Open
            } else {
                SwitchState::Closed
            };
            i += 1;
            if i >= m {
                break;
            }
        }
    }

    /// Samples a fresh state vector for `m` switches (reference path;
    /// see [`Self::sample_states_into`]).
    pub fn sample_states(&self, rng: &mut SmallRng, m: usize) -> Vec<SwitchState> {
        let mut out = Vec::new();
        self.sample_states_into(rng, m, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_graph::gen::rng;

    #[test]
    fn symmetric_model() {
        let m = FailureModel::symmetric(0.1);
        assert_eq!(m.eps_open, 0.1);
        assert_eq!(m.eps_close, 0.1);
        assert!((m.total() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn stationary_unavailability() {
        // λ = 0.02, mttr = 5 ⇒ u = 0.1/1.1 = 1/11
        let m = FailureModel::stationary(0.02, 5.0, 0.5);
        assert!((m.total() - 1.0 / 11.0).abs() < 1e-12);
        assert_eq!(m.eps_open, m.eps_close);
        // all failures open
        let m = FailureModel::stationary(0.02, 5.0, 1.0);
        assert_eq!(m.eps_close, 0.0);
        assert!((m.eps_open - 1.0 / 11.0).abs() < 1e-12);
        // no faults at all
        assert_eq!(FailureModel::stationary(0.0, 5.0, 0.5).total(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid stationary parameters")]
    fn stationary_rejects_zero_mttr() {
        FailureModel::stationary(0.1, 0.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "invalid failure probabilities")]
    fn invalid_model_rejected() {
        FailureModel::new(0.7, 0.7);
    }

    #[test]
    fn perfect_model_never_fails() {
        let m = FailureModel::perfect();
        let mut r = rng(1);
        let states = m.sample_states(&mut r, 1000);
        assert!(states.iter().all(|&s| s == SwitchState::Normal));
        let mask = m.sample_mask(&mut r, 1000);
        assert_eq!(mask.counts(), (0, 0, 1000));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = FailureModel::symmetric(0.3);
        let a = m.sample_mask(&mut rng(7), 500);
        let b = m.sample_mask(&mut rng(7), 500);
        assert_eq!(a, b);
        let a = m.sample_states(&mut rng(7), 500);
        let b = m.sample_states(&mut rng(7), 500);
        assert_eq!(a, b);
    }

    #[test]
    fn mask_matches_reference_in_sparse_regime() {
        // below DENSE_CUTOFF both paths must consume the RNG identically
        for (e1, e2) in [(0.01, 0.02), (0.03, 0.0), (0.0, 0.0001), (0.02, 0.04)] {
            let m = FailureModel::new(e1, e2);
            assert!(m.total() < FailureModel::DENSE_CUTOFF);
            let states = m.sample_states(&mut rng(99), 10_000);
            let mask = m.sample_mask(&mut rng(99), 10_000);
            assert_eq!(mask.to_states(), states, "({e1}, {e2})");
        }
    }

    #[test]
    fn dense_frequencies_match() {
        // dense word-fill regime (total ≥ DENSE_CUTOFF)
        let m = FailureModel::new(0.2, 0.15);
        let mut r = rng(42);
        let n = 200_000;
        let mask = m.sample_mask(&mut r, n);
        let (open, closed, _) = mask.counts();
        let open = open as f64 / n as f64;
        let closed = closed as f64 / n as f64;
        assert!((open - 0.2).abs() < 0.01, "open rate {open}");
        assert!((closed - 0.15).abs() < 0.01, "closed rate {closed}");
    }

    #[test]
    fn dense_cutoff_band_uses_word_fill_and_calibrates() {
        // ε = 0.1 (total 0.2) previously fell in the slow per-f64 band;
        // it must now be dense AND keep its marginals
        let m = FailureModel::symmetric(0.1);
        assert!(m.total() >= FailureModel::DENSE_CUTOFF);
        let mask = m.sample_mask(&mut rng(47), 500_000);
        let (open, closed, _) = mask.counts();
        assert!((open as f64 / 500_000.0 - 0.1).abs() < 0.005, "open {open}");
        assert!(
            (closed as f64 / 500_000.0 - 0.1).abs() < 0.005,
            "closed {closed}"
        );
    }

    #[test]
    fn sparse_frequencies_match() {
        // sparse regime (geometric skipping)
        let m = FailureModel::new(0.01, 0.02);
        let mut r = rng(43);
        let n = 1_000_000;
        let mask = m.sample_mask(&mut r, n);
        let (open, closed, _) = mask.counts();
        let open = open as f64 / n as f64;
        let closed = closed as f64 / n as f64;
        assert!((open - 0.01).abs() < 0.002, "open rate {open}");
        assert!((closed - 0.02).abs() < 0.002, "closed rate {closed}");
    }

    #[test]
    fn sparse_positions_are_spread() {
        // guard against off-by-one in geometric skipping: failures must be
        // able to land on the first and last positions
        let m = FailureModel::symmetric(0.03);
        let mut first_hit = false;
        let mut last_hit = false;
        let mut r = rng(44);
        let mut mask = FailureMask::new(0);
        for _ in 0..2000 {
            m.sample_into(&mut r, 10, &mut mask);
            if mask.state(0) != SwitchState::Normal {
                first_hit = true;
            }
            if mask.state(9) != SwitchState::Normal {
                last_hit = true;
            }
        }
        assert!(first_hit && last_hit);
    }

    #[test]
    fn asymmetric_split_in_both_regimes() {
        for eps in [0.03, 0.2] {
            let m = FailureModel::new(eps, 0.0);
            let mut r = rng(45);
            let mask = m.sample_mask(&mut r, 100_000);
            assert_eq!(mask.iter_closed().count(), 0);
            let m = FailureModel::new(0.0, eps);
            let mask = m.sample_mask(&mut r, 100_000);
            assert_eq!(mask.iter_open().count(), 0);
        }
    }

    #[test]
    fn extreme_probabilities_fill_everything() {
        // ε₁ + ε₂ = 1: every switch fails (threshold clamping)
        let m = FailureModel::new(0.6, 0.4);
        let mask = m.sample_mask(&mut rng(48), 10_000);
        let (open, closed, normal) = mask.counts();
        assert_eq!(normal, 0);
        assert_eq!(open + closed, 10_000);
    }

    #[test]
    fn zero_length_sample() {
        let m = FailureModel::symmetric(0.1);
        let mut r = rng(46);
        assert!(m.sample_states(&mut r, 0).is_empty());
        assert!(m.sample_mask(&mut r, 0).is_empty());
    }
}
