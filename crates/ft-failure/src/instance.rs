//! A sampled failure instance and views of the stricken network.
//!
//! §3 of the paper defines the event space Ω as the set of graphs
//! obtained from the network by independently assigning each edge one of
//! the three states. [`FailureInstance`] is one point of Ω: it wraps the
//! per-edge state vector and answers the queries the rest of the pipeline
//! needs (normal/usable filters, failure counts, faulty-vertex marks).

use crate::mask::FailureMask;
use crate::model::{FailureModel, SwitchState};
use ft_graph::ids::{EdgeId, VertexId};
use ft_graph::Digraph;
use rand::rngs::SmallRng;

/// One sampled assignment of a state to every switch of a network.
///
/// Backed by a word-packed [`FailureMask`] (two bits per switch), so a
/// trial's reset is a word memset and every fault-dependent pass
/// (repair, contraction, shorting) iterates failures by skipping
/// all-normal words instead of scanning every switch.
#[derive(Clone, Debug)]
pub struct FailureInstance {
    mask: FailureMask,
}

impl FailureInstance {
    /// Samples an instance for a network with `num_edges` switches.
    pub fn sample(model: &FailureModel, rng: &mut SmallRng, num_edges: usize) -> Self {
        FailureInstance {
            mask: model.sample_mask(rng, num_edges),
        }
    }

    /// Re-samples in place, reusing the allocation (hot Monte Carlo path).
    pub fn resample(&mut self, model: &FailureModel, rng: &mut SmallRng, num_edges: usize) {
        model.sample_into(rng, num_edges, &mut self.mask);
    }

    /// Packs an explicit state vector (tests, adversarial instances).
    pub fn from_states(states: Vec<SwitchState>) -> Self {
        FailureInstance {
            mask: FailureMask::from_states(&states),
        }
    }

    /// Wraps an already packed mask.
    pub fn from_mask(mask: FailureMask) -> Self {
        FailureInstance { mask }
    }

    /// An all-normal instance.
    pub fn perfect(num_edges: usize) -> Self {
        FailureInstance {
            mask: FailureMask::new(num_edges),
        }
    }

    /// The underlying packed mask.
    pub fn mask(&self) -> &FailureMask {
        &self.mask
    }

    /// Mutable access to the packed mask — the sliced→scalar fallback
    /// path overwrites a reused instance in place via
    /// [`crate::sliced::SlicedFailureMask::extract_lane_into`].
    pub fn mask_mut(&mut self) -> &mut FailureMask {
        &mut self.mask
    }

    /// Overwrites the state of one switch — used by exhaustive
    /// enumeration, which walks the `3^m` assignments by incremental
    /// odometer updates instead of rebuilding an instance per state.
    pub fn set_state(&mut self, e: EdgeId, s: SwitchState) {
        self.mask.set(e.index(), s);
    }

    /// Number of switches covered.
    pub fn len(&self) -> usize {
        self.mask.len()
    }

    /// Whether the instance covers zero switches.
    pub fn is_empty(&self) -> bool {
        self.mask.is_empty()
    }

    /// State of switch `e`.
    #[inline]
    pub fn state(&self, e: EdgeId) -> SwitchState {
        self.mask.state(e.index())
    }

    /// Whether switch `e` is in the normal state.
    #[inline]
    pub fn is_normal(&self, e: EdgeId) -> bool {
        self.mask.is_normal(e.index())
    }

    /// Whether switch `e` still *exists* as a conductor (normal or
    /// closed — an open-failed switch is gone).
    #[inline]
    pub fn is_usable(&self, e: EdgeId) -> bool {
        self.mask.is_usable(e.index())
    }

    /// Whether switch `e` is closed-failed (its endpoints contract).
    #[inline]
    pub fn is_closed(&self, e: EdgeId) -> bool {
        self.mask.is_closed(e.index())
    }

    /// `(open, closed, normal)` counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        self.mask.counts()
    }

    /// Ids of all failed (non-normal) switches, skipping all-normal
    /// words — O(m/32 + failures).
    pub fn failed_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.mask.iter_failed().map(EdgeId::from)
    }

    /// Ids of all closed-failed switches, skipping all-normal words.
    pub fn closed_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.mask.iter_closed().map(EdgeId::from)
    }

    /// Marks every vertex incident with a failed switch — the paper's
    /// **faulty vertices** (§6: "say a vertex η of 𝒩 is faulty if an edge
    /// (ξ, η) or (η, ξ) is in open failure or closed failure state").
    pub fn faulty_vertices<G: Digraph>(&self, g: &G) -> Vec<bool> {
        let mut faulty = vec![false; g.num_vertices()];
        for e in self.failed_edges() {
            let (t, h) = g.endpoints(e);
            faulty[t.index()] = true;
            faulty[h.index()] = true;
        }
        faulty
    }

    /// The vertices marked faulty, as a list.
    pub fn faulty_vertex_list<G: Digraph>(&self, g: &G) -> Vec<VertexId> {
        self.faulty_vertices(g)
            .into_iter()
            .enumerate()
            .filter(|&(_, f)| f)
            .map(|(i, _)| VertexId::from(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_graph::gen::rng;
    use ft_graph::ids::{e, v};
    use ft_graph::DiGraph;

    fn chain3() -> DiGraph {
        let mut g = DiGraph::new();
        g.add_vertices(4);
        g.add_edge(v(0), v(1));
        g.add_edge(v(1), v(2));
        g.add_edge(v(2), v(3));
        g
    }

    #[test]
    fn perfect_instance() {
        let inst = FailureInstance::perfect(5);
        assert_eq!(inst.len(), 5);
        assert!(!inst.is_empty());
        assert_eq!(inst.counts(), (0, 0, 5));
        assert!(inst.is_normal(e(0)));
        assert!(inst.is_usable(e(4)));
        assert_eq!(inst.failed_edges().count(), 0);
    }

    #[test]
    fn explicit_states() {
        let inst = FailureInstance::from_states(vec![
            SwitchState::Normal,
            SwitchState::Open,
            SwitchState::Closed,
        ]);
        assert!(inst.is_normal(e(0)));
        assert!(!inst.is_normal(e(1)));
        assert!(!inst.is_usable(e(1)));
        assert!(inst.is_usable(e(2)));
        assert!(inst.is_closed(e(2)));
        assert_eq!(inst.counts(), (1, 1, 1));
        let failed: Vec<_> = inst.failed_edges().collect();
        assert_eq!(failed, vec![e(1), e(2)]);
    }

    #[test]
    fn faulty_vertices_touch_failed_edges() {
        let g = chain3();
        // fail the middle edge e1 = (1, 2)
        let inst = FailureInstance::from_states(vec![
            SwitchState::Normal,
            SwitchState::Closed,
            SwitchState::Normal,
        ]);
        let faulty = inst.faulty_vertices(&g);
        assert_eq!(faulty, vec![false, true, true, false]);
        assert_eq!(inst.faulty_vertex_list(&g), vec![v(1), v(2)]);
    }

    #[test]
    fn resample_reuses_and_differs() {
        let model = FailureModel::symmetric(0.3);
        let mut r = rng(9);
        let mut inst = FailureInstance::sample(&model, &mut r, 100);
        let first = inst.counts();
        inst.resample(&model, &mut r, 100);
        assert_eq!(inst.len(), 100);
        // overwhelmingly likely to differ
        assert_ne!(first, inst.counts());
    }

    #[test]
    fn empty_instance() {
        let inst = FailureInstance::perfect(0);
        assert!(inst.is_empty());
        let g = DiGraph::new();
        assert!(inst.faulty_vertex_list(&g).is_empty());
    }
}
