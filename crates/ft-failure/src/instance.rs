//! A sampled failure instance and views of the stricken network.
//!
//! §3 of the paper defines the event space Ω as the set of graphs
//! obtained from the network by independently assigning each edge one of
//! the three states. [`FailureInstance`] is one point of Ω: it wraps the
//! per-edge state vector and answers the queries the rest of the pipeline
//! needs (normal/usable filters, failure counts, faulty-vertex marks).

use crate::model::{FailureModel, SwitchState};
use ft_graph::ids::{EdgeId, VertexId};
use ft_graph::Digraph;
use rand::rngs::SmallRng;

/// One sampled assignment of a state to every switch of a network.
#[derive(Clone, Debug)]
pub struct FailureInstance {
    states: Vec<SwitchState>,
}

impl FailureInstance {
    /// Samples an instance for a network with `num_edges` switches.
    pub fn sample(model: &FailureModel, rng: &mut SmallRng, num_edges: usize) -> Self {
        FailureInstance {
            states: model.sample(rng, num_edges),
        }
    }

    /// Re-samples in place, reusing the allocation (hot Monte Carlo path).
    pub fn resample(&mut self, model: &FailureModel, rng: &mut SmallRng, num_edges: usize) {
        let mut states = std::mem::take(&mut self.states);
        model.sample_into(rng, num_edges, &mut states);
        self.states = states;
    }

    /// Wraps an explicit state vector (tests, adversarial instances).
    pub fn from_states(states: Vec<SwitchState>) -> Self {
        FailureInstance { states }
    }

    /// An all-normal instance.
    pub fn perfect(num_edges: usize) -> Self {
        FailureInstance {
            states: vec![SwitchState::Normal; num_edges],
        }
    }

    /// Number of switches covered.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the instance covers zero switches.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// State of switch `e`.
    #[inline]
    pub fn state(&self, e: EdgeId) -> SwitchState {
        self.states[e.index()]
    }

    /// Whether switch `e` is in the normal state.
    #[inline]
    pub fn is_normal(&self, e: EdgeId) -> bool {
        self.states[e.index()] == SwitchState::Normal
    }

    /// Whether switch `e` still *exists* as a conductor (normal or
    /// closed — an open-failed switch is gone).
    #[inline]
    pub fn is_usable(&self, e: EdgeId) -> bool {
        self.states[e.index()] != SwitchState::Open
    }

    /// Whether switch `e` is closed-failed (its endpoints contract).
    #[inline]
    pub fn is_closed(&self, e: EdgeId) -> bool {
        self.states[e.index()] == SwitchState::Closed
    }

    /// `(open, closed, normal)` counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut open = 0;
        let mut closed = 0;
        for &s in &self.states {
            match s {
                SwitchState::Open => open += 1,
                SwitchState::Closed => closed += 1,
                SwitchState::Normal => {}
            }
        }
        (open, closed, self.states.len() - open - closed)
    }

    /// Ids of all failed (non-normal) switches.
    pub fn failed_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, &s)| s != SwitchState::Normal)
            .map(|(i, _)| EdgeId::from(i))
    }

    /// Marks every vertex incident with a failed switch — the paper's
    /// **faulty vertices** (§6: "say a vertex η of 𝒩 is faulty if an edge
    /// (ξ, η) or (η, ξ) is in open failure or closed failure state").
    pub fn faulty_vertices<G: Digraph>(&self, g: &G) -> Vec<bool> {
        let mut faulty = vec![false; g.num_vertices()];
        for e in self.failed_edges() {
            let (t, h) = g.endpoints(e);
            faulty[t.index()] = true;
            faulty[h.index()] = true;
        }
        faulty
    }

    /// The vertices marked faulty, as a list.
    pub fn faulty_vertex_list<G: Digraph>(&self, g: &G) -> Vec<VertexId> {
        self.faulty_vertices(g)
            .into_iter()
            .enumerate()
            .filter(|&(_, f)| f)
            .map(|(i, _)| VertexId::from(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_graph::gen::rng;
    use ft_graph::ids::{e, v};
    use ft_graph::DiGraph;

    fn chain3() -> DiGraph {
        let mut g = DiGraph::new();
        g.add_vertices(4);
        g.add_edge(v(0), v(1));
        g.add_edge(v(1), v(2));
        g.add_edge(v(2), v(3));
        g
    }

    #[test]
    fn perfect_instance() {
        let inst = FailureInstance::perfect(5);
        assert_eq!(inst.len(), 5);
        assert!(!inst.is_empty());
        assert_eq!(inst.counts(), (0, 0, 5));
        assert!(inst.is_normal(e(0)));
        assert!(inst.is_usable(e(4)));
        assert_eq!(inst.failed_edges().count(), 0);
    }

    #[test]
    fn explicit_states() {
        let inst = FailureInstance::from_states(vec![
            SwitchState::Normal,
            SwitchState::Open,
            SwitchState::Closed,
        ]);
        assert!(inst.is_normal(e(0)));
        assert!(!inst.is_normal(e(1)));
        assert!(!inst.is_usable(e(1)));
        assert!(inst.is_usable(e(2)));
        assert!(inst.is_closed(e(2)));
        assert_eq!(inst.counts(), (1, 1, 1));
        let failed: Vec<_> = inst.failed_edges().collect();
        assert_eq!(failed, vec![e(1), e(2)]);
    }

    #[test]
    fn faulty_vertices_touch_failed_edges() {
        let g = chain3();
        // fail the middle edge e1 = (1, 2)
        let inst = FailureInstance::from_states(vec![
            SwitchState::Normal,
            SwitchState::Closed,
            SwitchState::Normal,
        ]);
        let faulty = inst.faulty_vertices(&g);
        assert_eq!(faulty, vec![false, true, true, false]);
        assert_eq!(inst.faulty_vertex_list(&g), vec![v(1), v(2)]);
    }

    #[test]
    fn resample_reuses_and_differs() {
        let model = FailureModel::symmetric(0.3);
        let mut r = rng(9);
        let mut inst = FailureInstance::sample(&model, &mut r, 100);
        let first = inst.counts();
        inst.resample(&model, &mut r, 100);
        assert_eq!(inst.len(), 100);
        // overwhelmingly likely to differ
        assert_ne!(first, inst.counts());
    }

    #[test]
    fn empty_instance() {
        let inst = FailureInstance::perfect(0);
        assert!(inst.is_empty());
        let g = DiGraph::new();
        assert!(inst.faulty_vertex_list(&g).is_empty());
    }
}
