//! Two-terminal reliability: exact (state enumeration) and Monte Carlo.
//!
//! A *two-terminal network* (Moore & Shannon's relay network, and the
//! paper's `(ε, ε′)-1-network` of §3) is a graph with one input and one
//! output. Under a failure instance it can fail two ways:
//!
//! * **short** — input and output contract into one vertex: they are
//!   connected by closed-failed switches alone;
//! * **open** — no usable (normal or closed) path connects input to
//!   output.
//!
//! Proposition 1 asks for both probabilities to be < ε′.

use crate::instance::FailureInstance;
use crate::model::{FailureModel, SwitchState};
use crate::montecarlo::{estimate_probability, Estimate};
use crate::sliced::{block_seed, SlicedFailureMask, LANES};
use ft_graph::ids::{EdgeId, VertexId};
use ft_graph::sliced::{sliced_reach_into, SlicedWorkspace};
use ft_graph::traversal::{bfs, bfs_into, Direction};
use ft_graph::workspace::TraversalWorkspace;
use ft_graph::{Csr, DiGraph, Digraph, UnionFind};
use rand::rngs::SmallRng;

/// A graph with a single input and a single output terminal.
#[derive(Clone, Debug)]
pub struct TwoTerminal {
    /// The network graph.
    pub graph: DiGraph,
    /// Input terminal.
    pub source: VertexId,
    /// Output terminal.
    pub sink: VertexId,
}

/// How connectivity is interpreted for the *open* failure event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Connectivity {
    /// Electrical (relay-network) semantics: a chain of conducting
    /// switches regardless of edge orientation. The Moore–Shannon default.
    #[default]
    Undirected,
    /// Staged-network semantics: a directed input → output path.
    Directed,
}

/// The two failure probabilities of a two-terminal network.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FailureProbs {
    /// Probability the network is open (terminals disconnected).
    pub p_open: f64,
    /// Probability the network is shorted (terminals contracted).
    pub p_short: f64,
}

impl FailureProbs {
    /// A single switch: opens with ε₁, shorts with ε₂.
    pub fn single_switch(model: &FailureModel) -> Self {
        FailureProbs {
            p_open: model.eps_open,
            p_short: model.eps_close,
        }
    }

    /// The worse of the two probabilities.
    pub fn max(&self) -> f64 {
        self.p_open.max(self.p_short)
    }
}

impl TwoTerminal {
    /// Whether the instance shorts the terminals (closed edges alone
    /// connect them, ignoring direction).
    pub fn is_shorted(&self, inst: &FailureInstance) -> bool {
        let mut uf = UnionFind::new(self.graph.num_vertices());
        self.is_shorted_with(inst, &mut uf)
    }

    /// [`Self::is_shorted`] with a caller-owned [`UnionFind`] (reset
    /// here), iterating only the closed switches — the Monte Carlo hot
    /// path.
    pub fn is_shorted_with(&self, inst: &FailureInstance, uf: &mut UnionFind) -> bool {
        debug_assert_eq!(uf.len(), self.graph.num_vertices());
        uf.reset();
        for e in inst.closed_edges() {
            let (t, h) = self.graph.endpoints(e);
            uf.union(t.0, h.0);
        }
        uf.same(self.source.0, self.sink.0)
    }

    /// Whether the instance leaves the terminals connected by usable
    /// (normal or closed) switches.
    pub fn is_connected(&self, inst: &FailureInstance, conn: Connectivity) -> bool {
        let dir = match conn {
            Connectivity::Undirected => Direction::Undirected,
            Connectivity::Directed => Direction::Forward,
        };
        let b = bfs(
            &self.graph,
            &[self.source],
            dir,
            |e| inst.is_usable(e),
            |_| true,
        );
        b.reached(self.sink)
    }

    /// Exact failure probabilities by enumerating all `3^m` switch-state
    /// assignments. Exponential: intended for gadgets (m ≤ 13).
    ///
    /// # Panics
    /// Panics if the network has more than 13 switches.
    pub fn exact_failure_probs(&self, model: &FailureModel, conn: Connectivity) -> FailureProbs {
        let m = self.graph.num_edges();
        assert!(m <= 13, "exact enumeration limited to 13 switches, got {m}");
        let probs = [
            1.0 - model.total(), // Normal
            model.eps_open,      // Open
            model.eps_close,     // Closed
        ];
        const DIGIT_STATE: [SwitchState; 3] =
            [SwitchState::Normal, SwitchState::Open, SwitchState::Closed];
        let csr = Csr::from_digraph(&self.graph);
        let dir = match conn {
            Connectivity::Undirected => Direction::Undirected,
            Connectivity::Directed => Direction::Forward,
        };
        let mut ws = TraversalWorkspace::new();
        let mut uf = UnionFind::new(self.graph.num_vertices());
        let mut p_open = 0.0;
        let mut p_short = 0.0;
        let mut idx = vec![0u8; m];
        // the instance mirrors `idx` and is updated digit by digit as
        // the base-3 odometer turns — no per-assignment rebuild, and the
        // 3^m shorted/connected checks share one workspace + union–find
        let mut inst = FailureInstance::perfect(m);
        loop {
            let mut p = 1.0;
            for &d in &idx {
                p *= probs[d as usize];
            }
            if p > 0.0 {
                if self.is_shorted_with(&inst, &mut uf) {
                    p_short += p;
                }
                bfs_into(
                    &csr,
                    &[self.source],
                    dir,
                    |e| inst.is_usable(e),
                    |_| true,
                    &mut ws,
                );
                if !ws.reached(self.sink) {
                    p_open += p;
                }
            }
            // increment base-3 counter
            let mut i = 0;
            loop {
                if i == m {
                    return FailureProbs { p_open, p_short };
                }
                idx[i] += 1;
                if idx[i] < 3 {
                    inst.set_state(EdgeId::from(i), DIGIT_STATE[idx[i] as usize]);
                    break;
                }
                idx[i] = 0;
                inst.set_state(EdgeId::from(i), SwitchState::Normal);
                i += 1;
            }
        }
    }

    /// Monte Carlo estimates of `(p_open, p_short)`, bit-sliced: trials
    /// run in [`LANES`]-sized blocks under the
    /// [`block_seed`] per-lane seeding discipline, and each block is
    /// decided by **two lane-parallel sweeps** — a reachability sweep
    /// over the lanes' usable switches (open verdicts) and an undirected
    /// sweep over the closed plane alone (short verdicts; the word-level
    /// equivalent of the union–find contraction). The `trials % LANES`
    /// tail runs scalar from the next block's seed.
    ///
    /// [`Self::mc_failure_probs_scalar`] is the pinned scalar reference:
    /// in the sparse sampling regime (`total < DENSE_CUTOFF`) the two
    /// return **exactly** equal estimates; in the dense regime the
    /// sliced sampler draws its own stream and the two agree only
    /// statistically. Transpose equivalence of the per-lane *verdicts*
    /// given the same instances holds in both regimes (pinned by the
    /// equivalence tests).
    pub fn mc_failure_probs(
        &self,
        model: &FailureModel,
        conn: Connectivity,
        trials: u64,
        seed: u64,
    ) -> (Estimate, Estimate) {
        let m = self.graph.num_edges();
        let csr = Csr::from_digraph(&self.graph);
        let dir = match conn {
            Connectivity::Undirected => Direction::Undirected,
            Connectivity::Directed => Direction::Forward,
        };
        let blocks = trials / LANES as u64;
        let rem = trials % LANES as u64;
        let mut sliced = SlicedFailureMask::new();
        let mut sws = SlicedWorkspace::new();
        let mut opens = 0u64;
        let mut shorts = 0u64;
        for b in 0..blocks {
            let mut rng = ft_graph::gen::rng(block_seed(seed, b));
            model.sample_sliced_into(&mut rng, m, &mut sliced);
            sliced_reach_into(
                &csr,
                &[(self.source, !0)],
                dir,
                |e| sliced.usable_word(e.index()),
                |_| !0,
                &mut sws,
            );
            opens += (!sws.reached_lanes(self.sink)).count_ones() as u64;
            sliced_reach_into(
                &csr,
                &[(self.source, !0)],
                Direction::Undirected,
                |e| sliced.closed_word(e.index()),
                |_| !0,
                &mut sws,
            );
            shorts += sws.reached_lanes(self.sink).count_ones() as u64;
        }
        if rem > 0 {
            let (o, s) = self.mc_failure_probs_tail(model, &csr, dir, rem, blocks, seed);
            opens += o;
            shorts += s;
        }
        (
            Estimate {
                successes: opens,
                trials,
            },
            Estimate {
                successes: shorts,
                trials,
            },
        )
    }

    /// Scalar reference for [`Self::mc_failure_probs`]: identical block
    /// partition and seeding, but each lane is sampled and evaluated as
    /// one scalar trial (packed instance + BFS + union–find). Exactly
    /// equal to the sliced estimates in the sparse regime — the CI
    /// cross-check pins this.
    pub fn mc_failure_probs_scalar(
        &self,
        model: &FailureModel,
        conn: Connectivity,
        trials: u64,
        seed: u64,
    ) -> (Estimate, Estimate) {
        let csr = Csr::from_digraph(&self.graph);
        let dir = match conn {
            Connectivity::Undirected => Direction::Undirected,
            Connectivity::Directed => Direction::Forward,
        };
        let blocks = trials / LANES as u64;
        let rem = trials % LANES as u64;
        let mut opens = 0u64;
        let mut shorts = 0u64;
        for b in 0..blocks {
            let (o, s) = self.mc_failure_probs_tail(model, &csr, dir, LANES as u64, b, seed);
            opens += o;
            shorts += s;
        }
        if rem > 0 {
            let (o, s) = self.mc_failure_probs_tail(model, &csr, dir, rem, blocks, seed);
            opens += o;
            shorts += s;
        }
        (
            Estimate {
                successes: opens,
                trials,
            },
            Estimate {
                successes: shorts,
                trials,
            },
        )
    }

    /// Runs `count` scalar trials of block `block` (also the shared
    /// remainder path of both drivers): consecutive `sample_into` calls
    /// from the block's RNG, each evaluated with BFS + union–find.
    fn mc_failure_probs_tail(
        &self,
        model: &FailureModel,
        csr: &Csr,
        dir: Direction,
        count: u64,
        block: u64,
        seed: u64,
    ) -> (u64, u64) {
        let m = self.graph.num_edges();
        let mut rng = ft_graph::gen::rng(block_seed(seed, block));
        let mut inst = FailureInstance::perfect(m);
        let mut ws = TraversalWorkspace::new();
        let mut uf = UnionFind::new(self.graph.num_vertices());
        let mut opens = 0u64;
        let mut shorts = 0u64;
        for _ in 0..count {
            inst.resample(model, &mut rng, m);
            bfs_into(
                csr,
                &[self.source],
                dir,
                |e| inst.is_usable(e),
                |_| true,
                &mut ws,
            );
            if !ws.reached(self.sink) {
                opens += 1;
            }
            if self.is_shorted_with(&inst, &mut uf) {
                shorts += 1;
            }
        }
        (opens, shorts)
    }
}

/// The Wheatstone **bridge**: terminals s, t; interior a, b; switches
/// s–a, s–b, a–t, b–t and the cross switch a–b. Self-dual, so with
/// ε₁ = ε₂ = ε < ½ one substitution level strictly decreases both failure
/// probabilities — the amplification gadget behind our full-range
/// Proposition 1 construction.
pub fn bridge() -> TwoTerminal {
    let mut g = DiGraph::new();
    let s = g.add_vertex();
    let a = g.add_vertex();
    let b = g.add_vertex();
    let t = g.add_vertex();
    g.add_edge(s, a);
    g.add_edge(s, b);
    g.add_edge(a, t);
    g.add_edge(b, t);
    g.add_edge(a, b); // cross switch (undirected semantics)
    TwoTerminal {
        graph: g,
        source: s,
        sink: t,
    }
}

/// Exact failure probabilities of the bridge when each switch
/// independently opens with `probs.p_open` and shorts with
/// `probs.p_short` — the one-level substitution map `(o, s) ↦ (o', s')`.
pub fn bridge_map(probs: FailureProbs) -> FailureProbs {
    bridge().exact_failure_probs(
        &FailureModel::new(probs.p_open, probs.p_short),
        Connectivity::Undirected,
    )
}

/// A single switch as a two-terminal network.
pub fn single_switch() -> TwoTerminal {
    let mut g = DiGraph::new();
    let s = g.add_vertex();
    let t = g.add_vertex();
    g.add_edge(s, t);
    TwoTerminal {
        graph: g,
        source: s,
        sink: t,
    }
}

/// Monte Carlo helper: probability that `event` holds over failure
/// instances of a network with `num_edges` switches.
pub fn mc_event_probability<G: Digraph>(
    g: &G,
    model: &FailureModel,
    trials: u64,
    seed: u64,
    mut event: impl FnMut(&G, &FailureInstance) -> bool,
) -> Estimate {
    let m = g.num_edges();
    let mut inst = FailureInstance::perfect(m);
    estimate_probability(trials, seed, move |rng: &mut SmallRng| {
        inst.resample(model, rng, m);
        event(g, &inst)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_switch_probs() {
        let sw = single_switch();
        let model = FailureModel::new(0.1, 0.2);
        let p = sw.exact_failure_probs(&model, Connectivity::Undirected);
        assert!((p.p_open - 0.1).abs() < 1e-12);
        assert!((p.p_short - 0.2).abs() < 1e-12);
    }

    #[test]
    fn two_in_series_exact() {
        // series: open = 1-(1-ε₁)², short = ε₂²
        let mut g = DiGraph::new();
        let s = g.add_vertex();
        let mid = g.add_vertex();
        let t = g.add_vertex();
        g.add_edge(s, mid);
        g.add_edge(mid, t);
        let tt = TwoTerminal {
            graph: g,
            source: s,
            sink: t,
        };
        let model = FailureModel::new(0.1, 0.2);
        let p = tt.exact_failure_probs(&model, Connectivity::Undirected);
        assert!((p.p_open - (1.0 - 0.9 * 0.9)).abs() < 1e-12);
        assert!((p.p_short - 0.04).abs() < 1e-12);
    }

    #[test]
    fn two_in_parallel_exact() {
        // parallel: open = ε₁², short = 1-(1-ε₂)²
        let mut g = DiGraph::new();
        let s = g.add_vertex();
        let t = g.add_vertex();
        g.add_edge(s, t);
        g.add_edge(s, t);
        let tt = TwoTerminal {
            graph: g,
            source: s,
            sink: t,
        };
        let model = FailureModel::new(0.1, 0.2);
        let p = tt.exact_failure_probs(&model, Connectivity::Undirected);
        assert!((p.p_open - 0.01).abs() < 1e-12);
        assert!((p.p_short - (1.0 - 0.8 * 0.8)).abs() < 1e-12);
    }

    #[test]
    fn bridge_is_self_dual_at_symmetric_eps() {
        for eps in [0.05, 0.2, 0.4] {
            let p = bridge_map(FailureProbs {
                p_open: eps,
                p_short: eps,
            });
            assert!(
                (p.p_open - p.p_short).abs() < 1e-12,
                "self-duality violated at ε={eps}: {p:?}"
            );
        }
    }

    #[test]
    fn bridge_amplifies_below_half() {
        // f(ε) < ε for 0 < ε < 1/2 — the crummy-relay theorem
        for eps in [0.05, 0.1, 0.2, 0.3, 0.4, 0.45, 0.49] {
            let p = bridge_map(FailureProbs {
                p_open: eps,
                p_short: eps,
            });
            assert!(
                p.p_open < eps && p.p_short < eps,
                "no amplification at ε={eps}: {p:?}"
            );
        }
    }

    #[test]
    fn bridge_map_is_monotone_in_eps() {
        let mut last = FailureProbs {
            p_open: 0.0,
            p_short: 0.0,
        };
        for eps in [0.1, 0.2, 0.3, 0.4] {
            let p = bridge_map(FailureProbs {
                p_open: eps,
                p_short: eps,
            });
            assert!(p.p_open > last.p_open && p.p_short > last.p_short);
            last = p;
        }
    }

    #[test]
    fn mc_agrees_with_exact_on_bridge() {
        let b = bridge();
        let model = FailureModel::symmetric(0.3);
        let exact = b.exact_failure_probs(&model, Connectivity::Undirected);
        let (open, short) = b.mc_failure_probs(&model, Connectivity::Undirected, 40_000, 99);
        assert!(
            (open.p() - exact.p_open).abs() < 0.01,
            "{} vs {}",
            open.p(),
            exact.p_open
        );
        assert!((short.p() - exact.p_short).abs() < 0.01);
    }

    #[test]
    fn sliced_equals_scalar_exactly_in_sparse_regime() {
        // non-multiple-of-64 trial count exercises the scalar tail too
        let b = bridge();
        for conn in [Connectivity::Undirected, Connectivity::Directed] {
            let model = FailureModel::new(0.02, 0.03);
            assert!(model.total() < FailureModel::DENSE_CUTOFF);
            let sliced = b.mc_failure_probs(&model, conn, 10_037, 3);
            let scalar = b.mc_failure_probs_scalar(&model, conn, 10_037, 3);
            assert_eq!(sliced, scalar, "{conn:?}");
        }
    }

    #[test]
    fn sliced_and_scalar_agree_statistically_in_dense_regime() {
        let b = bridge();
        let model = FailureModel::symmetric(0.3);
        let exact = b.exact_failure_probs(&model, Connectivity::Undirected);
        let (open, short) = b.mc_failure_probs_scalar(&model, Connectivity::Undirected, 40_000, 99);
        assert!((open.p() - exact.p_open).abs() < 0.01);
        assert!((short.p() - exact.p_short).abs() < 0.01);
    }

    #[test]
    fn directed_vs_undirected_connectivity() {
        // s -> t and a "wrong way" edge t -> s in parallel: if the forward
        // edge opens, undirected connectivity survives via the other edge
        // but directed does not.
        let mut g = DiGraph::new();
        let s = g.add_vertex();
        let t = g.add_vertex();
        g.add_edge(s, t);
        g.add_edge(t, s);
        let tt = TwoTerminal {
            graph: g,
            source: s,
            sink: t,
        };
        let inst = FailureInstance::from_states(vec![SwitchState::Open, SwitchState::Normal]);
        assert!(tt.is_connected(&inst, Connectivity::Undirected));
        assert!(!tt.is_connected(&inst, Connectivity::Directed));
    }

    #[test]
    fn perfect_instance_is_connected_not_shorted() {
        let b = bridge();
        let inst = FailureInstance::perfect(5);
        assert!(b.is_connected(&inst, Connectivity::Undirected));
        assert!(!b.is_shorted(&inst));
    }
}
