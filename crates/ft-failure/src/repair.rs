//! The §4 repair procedure: discard faulty components and their
//! immediate neighbours.
//!
//! The paper's second observation in §4: *"with high probability we can
//! find a nonblocking network contained in the fault-tolerant network
//! merely by discarding faulty components and their immediate neighbors,
//! so no difficult computations are hidden here."* A vertex is faulty if
//! any incident switch failed (§6); the repaired network keeps exactly
//! the non-faulty vertices and the (necessarily normal) switches between
//! them. The fault-tolerance claim is then that the repaired network
//! still *contains* a nonblocking network on the surviving terminals —
//! certified downstream in `ft-core`.

use crate::instance::FailureInstance;
use ft_graph::ids::VertexId;
use ft_graph::{DiGraph, Digraph};

/// A repaired view of a network: faulty vertices and all their incident
/// edges removed. Borrows the original graph; vertex/edge ids are
/// preserved so terminal lists remain valid.
#[derive(Clone, Debug)]
pub struct Repaired<'a, G: Digraph> {
    graph: &'a G,
    /// `true` at vertices that survive (not faulty).
    pub alive: Vec<bool>,
}

impl<'a, G: Digraph> Repaired<'a, G> {
    /// Applies the repair procedure to `g` under `inst`.
    pub fn new(g: &'a G, inst: &FailureInstance) -> Self {
        let faulty = inst.faulty_vertices(g);
        Repaired {
            graph: g,
            alive: faulty.into_iter().map(|f| !f).collect(),
        }
    }

    /// Whether vertex `v` survived.
    #[inline]
    pub fn is_alive(&self, v: VertexId) -> bool {
        self.alive[v.index()]
    }

    /// Survivors among `terminals` (order preserved).
    pub fn surviving_terminals(&self, terminals: &[VertexId]) -> Vec<VertexId> {
        terminals
            .iter()
            .copied()
            .filter(|&t| self.is_alive(t))
            .collect()
    }

    /// Number of surviving vertices.
    pub fn num_alive(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Materialises the repaired network as a standalone graph (vertex
    /// ids preserved; dead vertices become isolated). Prefer the filter
    /// view for Monte Carlo; this is for inspection and tests.
    pub fn to_digraph(&self) -> DiGraph {
        let mut out = DiGraph::with_capacity(self.graph.num_vertices(), self.graph.num_edges());
        out.add_vertices(self.graph.num_vertices());
        for e in 0..self.graph.num_edges() {
            let e = ft_graph::ids::EdgeId::from(e);
            let (t, h) = self.graph.endpoints(e);
            if self.is_alive(t) && self.is_alive(h) {
                out.add_edge(t, h);
            }
        }
        out
    }

    /// A vertex filter closure for the traversal/flow APIs.
    pub fn vertex_filter(&self) -> impl Fn(VertexId) -> bool + '_ {
        move |v| self.alive[v.index()]
    }
}

/// Every edge whose endpoints both survive repair is automatically in the
/// normal state (a failed edge marks both endpoints faulty). This
/// invariant is what lets the repaired network be used without any edge
/// filter; the function checks it, for tests and debug assertions.
pub fn repaired_edges_all_normal<G: Digraph>(
    g: &G,
    inst: &FailureInstance,
    repaired: &Repaired<'_, G>,
) -> bool {
    (0..g.num_edges()).all(|e| {
        let e = ft_graph::ids::EdgeId::from(e);
        let (t, h) = g.endpoints(e);
        !(repaired.is_alive(t) && repaired.is_alive(h)) || inst.is_normal(e)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FailureModel, SwitchState};
    use ft_graph::gen::rng;
    use ft_graph::ids::v;

    fn diamond() -> DiGraph {
        let mut g = DiGraph::new();
        g.add_vertices(4);
        g.add_edge(v(0), v(1)); // e0
        g.add_edge(v(0), v(2)); // e1
        g.add_edge(v(1), v(3)); // e2
        g.add_edge(v(2), v(3)); // e3
        g
    }

    #[test]
    fn no_failures_everything_survives() {
        let g = diamond();
        let inst = FailureInstance::perfect(4);
        let r = Repaired::new(&g, &inst);
        assert_eq!(r.num_alive(), 4);
        assert_eq!(r.to_digraph().num_edges(), 4);
        assert!(repaired_edges_all_normal(&g, &inst, &r));
    }

    #[test]
    fn failed_edge_kills_both_endpoints() {
        let g = diamond();
        // fail e2 = (1,3): vertices 1 and 3 die
        let inst = FailureInstance::from_states(vec![
            SwitchState::Normal,
            SwitchState::Normal,
            SwitchState::Open,
            SwitchState::Normal,
        ]);
        let r = Repaired::new(&g, &inst);
        assert!(r.is_alive(v(0)));
        assert!(!r.is_alive(v(1)));
        assert!(r.is_alive(v(2)));
        assert!(!r.is_alive(v(3)));
        let repaired = r.to_digraph();
        // only e1 = (0,2) has both endpoints alive
        assert_eq!(repaired.num_edges(), 1);
        assert!(repaired.has_edge(v(0), v(2)));
        assert!(repaired_edges_all_normal(&g, &inst, &r));
        assert_eq!(r.surviving_terminals(&[v(0), v(1)]), vec![v(0)]);
    }

    #[test]
    fn closed_failures_also_kill() {
        let g = diamond();
        let inst = FailureInstance::from_states(vec![
            SwitchState::Closed,
            SwitchState::Normal,
            SwitchState::Normal,
            SwitchState::Normal,
        ]);
        let r = Repaired::new(&g, &inst);
        assert!(!r.is_alive(v(0)));
        assert!(!r.is_alive(v(1)));
        assert_eq!(r.num_alive(), 2);
    }

    #[test]
    fn filter_view_matches_materialised() {
        let g = diamond();
        let model = FailureModel::symmetric(0.2);
        let mut rr = rng(3);
        for _ in 0..50 {
            let inst = FailureInstance::sample(&model, &mut rr, 4);
            let r = Repaired::new(&g, &inst);
            let mat = r.to_digraph();
            let filt = r.vertex_filter();
            for u in g.vertices() {
                if !filt(u) {
                    assert_eq!(mat.degree(u), 0);
                }
            }
            assert!(repaired_edges_all_normal(&g, &inst, &r));
        }
    }
}
