//! Bit-sliced failure instances: 64 Monte Carlo trials per word.
//!
//! [`crate::mask::FailureMask`] packs one instance at 2 bits per
//! switch; this module transposes the layout. A [`SlicedFailureMask`]
//! holds **64 independent instances** ("lanes") with one `u64` per
//! switch per bit-plane — bit *i* of `open_word(s)` says "switch `s`
//! open-failed in lane *i*". Downstream word algebra then evaluates all
//! 64 trials at once: `usable_word(s)` feeds the lane-parallel
//! reachability kernel (`ft_graph::sliced`), `closed_word(s)` drives
//! lane-parallel shorting checks.
//!
//! ## Per-lane seeding discipline
//!
//! Trials are grouped in blocks of [`LANES`] and each block owns one
//! RNG: [`block_seed`]`(seed, b)` derives the block's seed with the
//! same golden-ratio multiply the thread-pool workers use, and
//! [`FailureModel::sample_sliced_into`] consumes that single xoshiro
//! stream. The discipline per regime (cutoff
//! [`FailureModel::DENSE_CUTOFF`], as in the scalar sampler):
//!
//! * **sparse** (`total < DENSE_CUTOFF`): lanes are filled
//!   *lane-major* — lane 0's geometric-gap pass first, then lane 1's,
//!   … — replicating the scalar [`FailureModel::sample_into`] loop
//!   draw for draw. Lane *i* of a sliced block is therefore
//!   **bit-identical** to the *i*-th consecutive scalar `sample_into`
//!   from the same block RNG, which is what lets the sliced and scalar
//!   Monte Carlo drivers produce *exactly* equal estimates (pinned by
//!   the CI cross-check).
//! * **dense**: a bit-sliced two-threshold comparator. For each switch
//!   the lanes' 32-bit uniforms are generated *bitwise*, MSB first —
//!   one `u64` draw yields bit *j* of all 64 lanes — and compared
//!   against the same `2³²`-lattice thresholds as the scalar dense
//!   word-fill. Lanes decide (strictly below / at-or-above a
//!   threshold) after ~2 bits on average, so a switch costs ~8 draws
//!   for 64 lanes (~¼ of the scalar dense path's 32) while sampling the
//!   *exact* same quantised trichotomy per lane. The dense stream is
//!   its own pinned sequence (golden fingerprints in
//!   `tests/determinism.rs`), *not* the scalar one — scalar≡sliced in
//!   the dense regime is distributional plus kernel-level transpose
//!   equivalence, not stream equality.
//!
//! ## Why the mask tracks its own dirty set
//!
//! At the paper's tiny ε a 10⁶-switch sliced block has a few hundred
//! failed switches but 16 MB of planes; a `fill(0)` per block would
//! dominate the whole pipeline (it already dominated the *scalar*
//! 2-bit path at ε = 10⁻⁶). Sparse fills therefore log every switch
//! whose planes become nonzero and [`reset`](SlicedFailureMask::reset)
//! re-zeroes exactly those, making a sparse block O(failures) end to
//! end. Dense fills mark the mask dense and reset by memset.

use crate::mask::FailureMask;
use crate::model::{FailureModel, SwitchState};
use rand::rngs::SmallRng;
use rand::Rng;

/// Trials per sliced block — one per bit of the plane words. Re-export
/// of [`ft_graph::sliced::LANES`] so `ft-failure` users need not depend
/// on the kernel module directly.
pub const LANES: usize = ft_graph::sliced::LANES;

/// Derives the RNG seed of sliced block `block` from the caller's
/// master `seed`.
///
/// Same golden-ratio multiply as the Monte Carlo thread-pool worker
/// seeds, keyed by block index instead of worker index — so a block's
/// trials depend only on `(seed, block)`, never on which worker or how
/// many threads ran it. That is what makes sliced estimates
/// byte-identical across thread counts.
#[inline]
pub fn block_seed(seed: u64, block: u64) -> u64 {
    seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(block.wrapping_add(1)))
}

/// 64 packed failure instances: per switch, one `u64` of open bits and
/// one of closed bits (bit *i* = lane *i*).
#[derive(Clone, Debug, Default)]
pub struct SlicedFailureMask {
    open: Vec<u64>,
    closed: Vec<u64>,
    len: usize,
    /// Switches with a nonzero `open | closed` word, each exactly once.
    /// Ascending after a dense fill, unordered after a sparse one
    /// (lane-major filling revisits positions).
    dirty: Vec<u32>,
    /// Whether the last fill was dense (reset by memset) or sparse
    /// (reset via `dirty`).
    dense: bool,
}

impl SlicedFailureMask {
    /// An empty mask; buffers grow on first sample.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets to all-normal in every lane over `m` switches, reusing
    /// allocations. After a sparse fill this is O(failed switches), not
    /// O(m) — the point of the dirty list.
    pub fn reset(&mut self, m: usize) {
        if m != self.len {
            self.open.clear();
            self.open.resize(m, 0);
            self.closed.clear();
            self.closed.resize(m, 0);
        } else if self.dense {
            self.open.fill(0);
            self.closed.fill(0);
        } else {
            for &i in &self.dirty {
                self.open[i as usize] = 0;
                self.closed[i as usize] = 0;
            }
        }
        self.dirty.clear();
        self.dense = false;
        self.len = m;
    }

    /// Number of switches covered (per lane).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask covers zero switches.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lanes in which switch `i` open-failed.
    #[inline]
    pub fn open_word(&self, i: usize) -> u64 {
        self.open[i]
    }

    /// Lanes in which switch `i` closed-failed.
    #[inline]
    pub fn closed_word(&self, i: usize) -> u64 {
        self.closed[i]
    }

    /// Lanes in which switch `i` failed either way.
    #[inline]
    pub fn failed_word(&self, i: usize) -> u64 {
        self.open[i] | self.closed[i]
    }

    /// Lanes in which switch `i` still conducts (normal or closed) —
    /// the edge-traversability word for the reachability kernel.
    #[inline]
    pub fn usable_word(&self, i: usize) -> u64 {
        !self.open[i]
    }

    /// State of switch `i` in lane `lane`.
    #[inline]
    pub fn lane_state(&self, i: usize, lane: usize) -> SwitchState {
        debug_assert!(lane < LANES);
        if (self.open[i] >> lane) & 1 != 0 {
            SwitchState::Open
        } else if (self.closed[i] >> lane) & 1 != 0 {
            SwitchState::Closed
        } else {
            SwitchState::Normal
        }
    }

    /// Switches that failed in *some* lane, each exactly once,
    /// unordered. O(that count) after a sparse fill — fault-dependent
    /// passes (repair masks, contraction) iterate this instead of all
    /// `m` switches.
    pub fn iter_failed_switches(&self) -> impl Iterator<Item = usize> + '_ {
        self.dirty.iter().map(|&i| i as usize)
    }

    /// Unpacks lane `lane` into a scalar [`FailureMask`] — the bridge
    /// to every per-instance scalar kernel (the fallback contract: a
    /// lane that needs a full answer is extracted and replayed
    /// scalar-side). O(failed switches).
    pub fn extract_lane_into(&self, lane: usize, out: &mut FailureMask) {
        debug_assert!(lane < LANES);
        out.reset(self.len);
        let bit = 1u64 << lane;
        for &i in &self.dirty {
            let i = i as usize;
            if self.open[i] & bit != 0 {
                out.set(i, SwitchState::Open);
            } else if self.closed[i] & bit != 0 {
                out.set(i, SwitchState::Closed);
            }
        }
    }

    /// Sets lane `lane` of switch `i` (sparse fills; keeps the dirty
    /// invariant).
    #[inline]
    fn set_lane(&mut self, i: usize, lane_bit: u64, open: bool) {
        if self.open[i] | self.closed[i] == 0 {
            self.dirty.push(i as u32);
        }
        if open {
            self.open[i] |= lane_bit;
        } else {
            self.closed[i] |= lane_bit;
        }
    }
}

impl FailureModel {
    /// Samples one block of [`LANES`] independent failure instances
    /// into `out` (reset to `m` switches) from `rng` — normally a fresh
    /// [`block_seed`]-derived stream.
    ///
    /// See the [module docs](self) for the per-lane seeding discipline:
    /// below [`Self::DENSE_CUTOFF`] the stream is consumed lane-major
    /// and each lane is bit-identical to a consecutive scalar
    /// [`Self::sample_into`]; at or above it a bit-sliced MSB-first
    /// comparator shares draws across lanes and pins its own stream.
    pub fn sample_sliced_into(&self, rng: &mut SmallRng, m: usize, out: &mut SlicedFailureMask) {
        out.reset(m);
        let p = self.total();
        if p <= 0.0 || m == 0 {
            return;
        }
        if p >= Self::DENSE_CUTOFF {
            self.sample_sliced_dense(rng, m, out);
        } else {
            // Lane-major replication of the scalar geometric-gap loop.
            let open_share = self.eps_open / p;
            let ln_q = (1.0 - p).ln();
            for lane in 0..LANES {
                let bit = 1u64 << lane;
                let mut i = 0usize;
                loop {
                    let u: f64 = rng.random();
                    // skip ~ Geometric(p): non-failures before the next failure
                    let skip = (u.ln() / ln_q).floor();
                    if skip >= (m - i) as f64 {
                        break;
                    }
                    i += skip as usize;
                    let open = rng.random::<f64>() < open_share;
                    out.set_lane(i, bit, open);
                    i += 1;
                    if i >= m {
                        break;
                    }
                }
            }
        }
    }

    /// Dense regime: per switch, compare the lanes' 32-bit uniforms —
    /// generated one bit-plane per `u64` draw, MSB first — against the
    /// scalar dense word-fill's thresholds. A lane leaves the
    /// undecided set once its uniform's prefix differs from the
    /// threshold's, so the loop usually stops after ~8 of the 32
    /// planes.
    fn sample_sliced_dense(&self, rng: &mut SmallRng, m: usize, out: &mut SlicedFailureMask) {
        let scale = 4294967296.0; // 2^32
        let t_open = (self.eps_open * scale) as u64;
        let t_fail = (self.total() * scale).min(scale) as u64;
        // comparator start state: lt = lanes already known below the
        // threshold, und = lanes still matching the threshold's prefix
        let start = |t: u64| -> (u64, u64) {
            if t == 0 {
                (0, 0) // nothing is < 0
            } else if t >= 1 << 32 {
                (!0, 0) // everything is < 2^32
            } else {
                (0, !0)
            }
        };
        let (lt_o0, und_o0) = start(t_open);
        let (lt_f0, und_f0) = start(t_fail);
        for i in 0..m {
            let (mut lt_o, mut und_o) = (lt_o0, und_o0);
            let (mut lt_f, mut und_f) = (lt_f0, und_f0);
            let mut j = 32u32;
            while und_o | und_f != 0 {
                j -= 1;
                // bit j of all 64 lane uniforms, one per word bit
                let r = rng.random::<u64>();
                if (t_open >> j) & 1 != 0 {
                    lt_o |= und_o & !r;
                    und_o &= r;
                } else {
                    und_o &= !r;
                }
                if (t_fail >> j) & 1 != 0 {
                    lt_f |= und_f & !r;
                    und_f &= r;
                } else {
                    und_f &= !r;
                }
                if j == 0 {
                    break; // exhausted: U == t exactly ⇒ not below
                }
            }
            let open = lt_o;
            let closed = lt_f & !lt_o;
            out.open[i] = open;
            out.closed[i] = closed;
            if open | closed != 0 {
                out.dirty.push(i as u32);
            }
        }
        out.dense = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_graph::gen::rng;

    fn brute_dirty(m: &SlicedFailureMask) -> Vec<usize> {
        (0..m.len()).filter(|&i| m.failed_word(i) != 0).collect()
    }

    #[test]
    fn sparse_lanes_bit_identical_to_consecutive_scalar_samples() {
        let model = FailureModel::new(0.01, 0.02);
        assert!(model.total() < FailureModel::DENSE_CUTOFF);
        let m = 3000;
        let mut sliced = SlicedFailureMask::new();
        model.sample_sliced_into(&mut rng(123), m, &mut sliced);
        // the scalar side consumes the *same* stream lane-major
        let mut scalar_rng = rng(123);
        let mut scalar = FailureMask::new(0);
        let mut lane = FailureMask::new(0);
        for l in 0..LANES {
            model.sample_into(&mut scalar_rng, m, &mut scalar);
            sliced.extract_lane_into(l, &mut lane);
            assert_eq!(lane, scalar, "lane {l}");
        }
    }

    #[test]
    fn dense_marginals_match_model_per_lane() {
        let model = FailureModel::new(0.2, 0.15);
        let m = 20_000;
        let mut sliced = SlicedFailureMask::new();
        model.sample_sliced_into(&mut rng(7), m, &mut sliced);
        for lane in [0, 31, 63] {
            let mut open = 0usize;
            let mut closed = 0usize;
            for i in 0..m {
                match sliced.lane_state(i, lane) {
                    SwitchState::Open => open += 1,
                    SwitchState::Closed => closed += 1,
                    SwitchState::Normal => {}
                }
            }
            let open = open as f64 / m as f64;
            let closed = closed as f64 / m as f64;
            assert!((open - 0.2).abs() < 0.02, "lane {lane} open {open}");
            assert!((closed - 0.15).abs() < 0.02, "lane {lane} closed {closed}");
        }
    }

    #[test]
    fn dense_lanes_are_not_identical() {
        // shared bit-plane draws must still decorrelate lanes
        let model = FailureModel::symmetric(0.1);
        let mut sliced = SlicedFailureMask::new();
        model.sample_sliced_into(&mut rng(9), 2000, &mut sliced);
        let mut a = FailureMask::new(0);
        let mut b = FailureMask::new(0);
        sliced.extract_lane_into(0, &mut a);
        sliced.extract_lane_into(1, &mut b);
        assert_ne!(a, b);
        let (open_a, ..) = a.counts();
        assert!(open_a > 0);
    }

    #[test]
    fn extreme_thresholds_fill_or_clear_all_lanes() {
        // ε₁ + ε₂ = 1: everything fails in every lane, no draws needed
        let model = FailureModel::new(1.0, 0.0);
        let mut sliced = SlicedFailureMask::new();
        model.sample_sliced_into(&mut rng(1), 100, &mut sliced);
        for i in 0..100 {
            assert_eq!(sliced.open_word(i), !0);
            assert_eq!(sliced.closed_word(i), 0);
        }
        let model = FailureModel::perfect();
        model.sample_sliced_into(&mut rng(1), 100, &mut sliced);
        for i in 0..100 {
            assert_eq!(sliced.failed_word(i), 0);
            assert_eq!(sliced.usable_word(i), !0);
        }
        assert_eq!(sliced.iter_failed_switches().count(), 0);
    }

    #[test]
    fn dirty_list_matches_brute_force_in_both_regimes() {
        let mut sliced = SlicedFailureMask::new();
        for eps in [0.001, 0.02, 0.1, 0.3] {
            let model = FailureModel::symmetric(eps);
            model.sample_sliced_into(&mut rng(17), 700, &mut sliced);
            let mut dirty: Vec<usize> = sliced.iter_failed_switches().collect();
            dirty.sort_unstable();
            dirty.dedup();
            assert_eq!(
                dirty.len(),
                sliced.iter_failed_switches().count(),
                "eps {eps}: dupes"
            );
            assert_eq!(dirty, brute_dirty(&sliced), "eps {eps}");
        }
    }

    #[test]
    fn reset_clears_after_sparse_and_dense_fills() {
        let mut sliced = SlicedFailureMask::new();
        let dense = FailureModel::symmetric(0.2);
        let sparse = FailureModel::symmetric(0.005);
        for model in [&dense, &sparse, &dense, &sparse] {
            model.sample_sliced_into(&mut rng(3), 500, &mut sliced);
        }
        sliced.reset(500);
        assert!((0..500).all(|i| sliced.failed_word(i) == 0));
        assert_eq!(sliced.iter_failed_switches().count(), 0);
        // shrink and regrow across resets
        sliced.reset(100);
        assert_eq!(sliced.len(), 100);
        sparse.sample_sliced_into(&mut rng(4), 900, &mut sliced);
        assert_eq!(sliced.len(), 900);
        assert_eq!(
            brute_dirty(&sliced).len(),
            sliced.iter_failed_switches().count()
        );
    }

    #[test]
    fn block_seed_matches_worker_derivation() {
        assert_eq!(block_seed(5, 0), 5u64.wrapping_add(0x9E37_79B9_7F4A_7C15));
        assert_ne!(block_seed(5, 0), block_seed(5, 1));
        assert_ne!(block_seed(5, 1), block_seed(6, 1));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let model = FailureModel::symmetric(0.08);
        let mut a = SlicedFailureMask::new();
        let mut b = SlicedFailureMask::new();
        model.sample_sliced_into(&mut rng(11), 1000, &mut a);
        model.sample_sliced_into(&mut rng(11), 1000, &mut b);
        for i in 0..1000 {
            assert_eq!(a.open_word(i), b.open_word(i));
            assert_eq!(a.closed_word(i), b.closed_word(i));
        }
    }

    #[test]
    fn extract_lane_roundtrips_lane_state() {
        let model = FailureModel::new(0.04, 0.01);
        let mut sliced = SlicedFailureMask::new();
        model.sample_sliced_into(&mut rng(21), 400, &mut sliced);
        let mut lane = FailureMask::new(0);
        for l in [0, 17, 63] {
            sliced.extract_lane_into(l, &mut lane);
            for i in 0..400 {
                assert_eq!(
                    lane.state(i),
                    sliced.lane_state(i, l),
                    "lane {l} switch {i}"
                );
            }
        }
    }
}
