//! Closed-failure contraction: the quotient graph and shorting events.
//!
//! A closed-failed switch permanently connects its two links: the paper
//! models this as the two endpoints contracting to one vertex (§2). The
//! contraction of all closed edges partitions the vertex set into
//! electrical nodes; two *terminals* falling into one class is a
//! **short** — the catastrophic event behind Lemma 2 (many close-together
//! inputs ⇒ some pair shorts with probability ≥ ½ at ε = ¼) and Lemma 7
//! (𝒩's terminals short with probability ≤ c₂ν²(160ε)^{2ν}).

use crate::instance::FailureInstance;
use ft_graph::ids::{EdgeId, VertexId};
use ft_graph::{DiGraph, Digraph, UnionFind};

/// Union–find over the vertices with one union per closed edge.
pub fn contraction_classes<G: Digraph>(g: &G, inst: &FailureInstance) -> UnionFind {
    let mut uf = UnionFind::new(g.num_vertices());
    contraction_classes_into(g, inst, &mut uf);
    uf
}

/// [`contraction_classes`] into a caller-owned [`UnionFind`] (reset
/// here): iterates only the closed switches via the packed mask's
/// word-skipping, so a trial at the paper's tiny ε costs O(m/32 +
/// closures) instead of a per-switch scan — the Monte Carlo hot path.
pub fn contraction_classes_into<G: Digraph>(g: &G, inst: &FailureInstance, uf: &mut UnionFind) {
    debug_assert_eq!(uf.len(), g.num_vertices());
    uf.reset();
    for e in inst.closed_edges() {
        let (t, h) = g.endpoints(e);
        uf.union(t.0, h.0);
    }
}

/// Returns the first pair of distinct terminals that contract to a single
/// electrical node, if any. `None` means no short among `terminals`.
pub fn find_shorted_pair<G: Digraph>(
    g: &G,
    inst: &FailureInstance,
    terminals: &[VertexId],
) -> Option<(VertexId, VertexId)> {
    let mut uf = contraction_classes(g, inst);
    // map root -> first terminal seen with that root
    let mut seen: std::collections::HashMap<u32, VertexId> = std::collections::HashMap::new();
    for &t in terminals {
        let r = uf.find(t.0);
        if let Some(&prev) = seen.get(&r) {
            if prev != t {
                return Some((prev, t));
            }
        } else {
            seen.insert(r, t);
        }
    }
    None
}

/// Whether any two distinct terminals are shorted.
pub fn terminals_shorted<G: Digraph>(
    g: &G,
    inst: &FailureInstance,
    terminals: &[VertexId],
) -> bool {
    find_shorted_pair(g, inst, terminals).is_some()
}

/// [`terminals_shorted`] with a caller-owned [`UnionFind`], for trial
/// loops. Avoids the root→terminal map of [`find_shorted_pair`]: after
/// contraction, two *distinct* terminals short iff uniting the terminals
/// one by one into the first ever finds a pair already connected.
///
/// `terminals` must be pairwise distinct vertex ids (they are for every
/// terminal list in this workspace; duplicates would be reported as
/// shorts).
pub fn terminals_shorted_with<G: Digraph>(
    g: &G,
    inst: &FailureInstance,
    terminals: &[VertexId],
    uf: &mut UnionFind,
) -> bool {
    contraction_classes_into(g, inst, uf);
    let Some((&first, rest)) = terminals.split_first() else {
        return false;
    };
    for &t in rest {
        debug_assert_ne!(t, first, "terminals must be distinct");
        // A failed union means `t` already shares an electrical node
        // with an earlier terminal (possibly through `first`'s growing
        // set) — exactly a shorted pair.
        if !uf.union(first.0, t.0) {
            return true;
        }
    }
    false
}

/// The fully contracted network: closed edges merge endpoint classes,
/// open edges vanish, normal edges survive between classes (self-loop
/// normal edges inside a class are dropped — electrically meaningless).
#[derive(Clone, Debug)]
pub struct ContractedNetwork {
    /// Quotient graph over electrical nodes.
    pub graph: DiGraph,
    /// `class_of[v]` = node of the quotient containing original vertex v.
    pub class_of: Vec<u32>,
    /// For each surviving quotient edge, the original [`EdgeId`].
    pub edge_origin: Vec<EdgeId>,
}

/// Builds the contracted network of `g` under `inst`.
pub fn contract<G: Digraph>(g: &G, inst: &FailureInstance) -> ContractedNetwork {
    let mut uf = contraction_classes(g, inst);
    let (class_of, num_classes) = uf.quotient();
    let mut graph = DiGraph::with_capacity(num_classes, g.num_edges());
    graph.add_vertices(num_classes);
    let mut edge_origin = Vec::new();
    for e in 0..g.num_edges() {
        let e = EdgeId::from(e);
        if !inst.is_normal(e) {
            continue;
        }
        let (t, h) = g.endpoints(e);
        let (ct, ch) = (class_of[t.index()], class_of[h.index()]);
        if ct != ch {
            graph.add_edge(VertexId(ct), VertexId(ch));
            edge_origin.push(e);
        }
    }
    ContractedNetwork {
        graph,
        class_of,
        edge_origin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SwitchState;
    use ft_graph::ids::v;

    fn chain4() -> DiGraph {
        let mut g = DiGraph::new();
        g.add_vertices(4);
        g.add_edge(v(0), v(1));
        g.add_edge(v(1), v(2));
        g.add_edge(v(2), v(3));
        g
    }

    #[test]
    fn no_failures_no_short() {
        let g = chain4();
        let inst = FailureInstance::perfect(3);
        assert!(!terminals_shorted(&g, &inst, &[v(0), v(3)]));
        let c = contract(&g, &inst);
        assert_eq!(c.graph.num_vertices(), 4);
        assert_eq!(c.graph.num_edges(), 3);
    }

    #[test]
    fn closed_chain_shorts_terminals() {
        let g = chain4();
        let inst = FailureInstance::from_states(vec![SwitchState::Closed; 3]);
        assert!(terminals_shorted(&g, &inst, &[v(0), v(3)]));
        let (a, b) = find_shorted_pair(&g, &inst, &[v(0), v(3)]).unwrap();
        assert_eq!((a, b), (v(0), v(3)));
        let c = contract(&g, &inst);
        assert_eq!(c.graph.num_vertices(), 1);
        assert_eq!(c.graph.num_edges(), 0);
    }

    #[test]
    fn partial_closure_no_short() {
        let g = chain4();
        // close only the middle edge: 1 and 2 merge, terminals 0,3 distinct
        let inst = FailureInstance::from_states(vec![
            SwitchState::Normal,
            SwitchState::Closed,
            SwitchState::Normal,
        ]);
        assert!(!terminals_shorted(&g, &inst, &[v(0), v(3)]));
        let c = contract(&g, &inst);
        assert_eq!(c.graph.num_vertices(), 3);
        assert_eq!(c.graph.num_edges(), 2, "two normal edges survive");
        assert_eq!(c.class_of[1], c.class_of[2]);
        assert_ne!(c.class_of[0], c.class_of[3]);
    }

    #[test]
    fn open_edges_vanish() {
        let g = chain4();
        let inst = FailureInstance::from_states(vec![
            SwitchState::Open,
            SwitchState::Normal,
            SwitchState::Open,
        ]);
        let c = contract(&g, &inst);
        assert_eq!(c.graph.num_vertices(), 4);
        assert_eq!(c.graph.num_edges(), 1);
        assert_eq!(c.edge_origin, vec![ft_graph::ids::e(1)]);
    }

    #[test]
    fn normal_self_loop_inside_class_dropped() {
        // triangle-ish: 0->1 closed, plus a parallel normal 0->1
        let mut g = DiGraph::new();
        g.add_vertices(2);
        g.add_edge(v(0), v(1));
        g.add_edge(v(0), v(1));
        let inst = FailureInstance::from_states(vec![SwitchState::Closed, SwitchState::Normal]);
        let c = contract(&g, &inst);
        assert_eq!(c.graph.num_vertices(), 1);
        assert_eq!(
            c.graph.num_edges(),
            0,
            "normal edge inside one electrical node is dropped"
        );
    }

    #[test]
    fn shorted_with_matches_allocating_on_random_instances() {
        use crate::model::FailureModel;
        use ft_graph::gen::rng;
        let g = chain4();
        let model = FailureModel::new(0.1, 0.3);
        let mut r = rng(3);
        let mut uf = ft_graph::UnionFind::new(g.num_vertices());
        let terminals = [v(0), v(2), v(3)];
        for _ in 0..200 {
            let inst = FailureInstance::sample(&model, &mut r, g.num_edges());
            assert_eq!(
                terminals_shorted(&g, &inst, &terminals),
                terminals_shorted_with(&g, &inst, &terminals, &mut uf),
                "{:?}",
                inst.counts()
            );
        }
    }

    #[test]
    fn three_terminals_short_detection() {
        let g = chain4();
        // short 2-3 only; terminals {0, 2, 3}: pair (2,3) shorted
        let inst = FailureInstance::from_states(vec![
            SwitchState::Normal,
            SwitchState::Normal,
            SwitchState::Closed,
        ]);
        let (a, b) = find_shorted_pair(&g, &inst, &[v(0), v(2), v(3)]).unwrap();
        assert_eq!((a, b), (v(2), v(3)));
        assert!(!terminals_shorted(&g, &inst, &[v(0), v(2)]));
    }
}
