//! # ft-failure — the random switch failure model and reliability theory
//!
//! Implements §1/§3 of Pippenger & Lin: each switch of a network is
//! independently **open-failed** (probability ε₁, edge removed),
//! **closed-failed** (probability ε₂, endpoints contracted) or **normal**.
//! On top of the model sit:
//!
//! * [`instance`] — sampled failure instances (points of the event space
//!   Ω) with geometric-gap sampling for the tiny ε the paper uses;
//! * [`contraction`] — the closed-failure quotient graph and terminal
//!   *shorting* detection (Lemmas 2 and 7);
//! * [`repair`] — the §4 repair procedure: discard faulty vertices;
//! * [`incremental`] — O(1)-per-event maintenance of the §4 routable
//!   alive-mask under temporal fault/repair churn;
//! * [`reliability`] — two-terminal failure probabilities, exact (state
//!   enumeration) and Monte Carlo; the Wheatstone bridge amplifier;
//! * [`sp`] — series-parallel networks with the exact Moore–Shannon
//!   composition calculus;
//! * [`hammock`] — `(l, w)`-directed-grid hammocks (the paper's Fig. 4)
//!   with certified analytic failure bounds;
//! * [`onenet`] — explicit `(ε, ε′)-1-networks` (Proposition 1) of size
//!   `O((log 1/ε′)²)` and depth `O(log 1/ε′)`;
//! * [`edge_replace`] — the §3 edge-substitution transformation;
//! * [`montecarlo`] — Bernoulli estimators with Wilson intervals.

#![warn(missing_docs)]

pub mod contraction;
pub mod edge_replace;
pub mod hammock;
pub mod incremental;
pub mod instance;
pub mod mask;
pub mod model;
pub mod montecarlo;
pub mod onenet;
pub mod reliability;
pub mod repair;
pub mod sliced;
pub mod sp;

pub use hammock::Hammock;
pub use incremental::AliveTracker;
pub use instance::FailureInstance;
pub use mask::FailureMask;
pub use model::{FailureModel, SwitchState};
pub use montecarlo::{Estimate, TrialScratch};
pub use onenet::{construct_onenet, OneNet};
pub use reliability::{Connectivity, FailureProbs, TwoTerminal};
pub use repair::Repaired;
pub use sliced::{block_seed, SlicedFailureMask};
pub use sp::SpNetwork;
