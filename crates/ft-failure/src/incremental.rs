//! Incremental maintenance of the §4 repair mask under fault/repair
//! churn.
//!
//! The temporal simulation's true hot path is the fault/repair/connect
//! loop: a switch fails, the repair discipline discards its faulty
//! endpoints, crossing circuits die and reroute; later the switch is
//! repaired and the endpoints may come back. Recomputing the routable
//! alive-mask from the cumulative [`FailureInstance`] on every event
//! costs O(V + E); but the §4 discipline is *local* — a vertex is
//! discarded iff it is internal (not an exempt terminal) **and** at
//! least one incident switch is failed — so a single switch transition
//! can only change the liveness of its two endpoints.
//!
//! [`AliveTracker`] exploits that: it keeps, per vertex, the number of
//! incident failed switches (`failed_deg`). Failing a switch increments
//! its endpoints' counters; the vertices whose counter went 0 → 1 are
//! exactly the newly-discarded ones. Repairing decrements; 1 → 0 means
//! revived. Each event is O(1), the "dirty region" is provably the
//! edge's ≤ 2 endpoints (no recompute-threshold fallback needed), and
//! the maintained mask is **bit-identical** to the from-scratch
//! computation at every step — pinned by the equivalence tests here, by
//! `ft-sim`'s interleaving proptests and by the engine's debug
//! assertions.

use crate::instance::FailureInstance;
use ft_graph::ids::VertexId;
use ft_graph::Digraph;

/// Incrementally maintained §4 routable alive-mask.
///
/// Semantics (identical for every staged fabric, including the paper's
/// 𝒩 — see `Survivor::routable_alive` in `ft-core`): a vertex is alive
/// iff it is an exempt terminal, or no incident switch is failed.
#[derive(Clone, Debug, Default)]
pub struct AliveTracker {
    /// Number of failed switches incident to each vertex.
    failed_deg: Vec<u32>,
    /// Exempt (terminal) vertices: always alive, never discarded.
    exempt: Vec<bool>,
    /// The maintained mask: `alive[v] == exempt[v] || failed_deg[v] == 0`.
    alive: Vec<bool>,
}

impl AliveTracker {
    /// Builds a tracker for `g` with `exempt` terminals, synchronised to
    /// `inst`. O(V + failed switches).
    pub fn new<G: Digraph>(
        g: &G,
        exempt: impl IntoIterator<Item = VertexId>,
        inst: &FailureInstance,
    ) -> Self {
        let mut t = AliveTracker::default();
        t.reset_for(g, exempt, inst);
        t
    }

    /// Re-synchronises the tracker to `(g, exempt, inst)` reusing its
    /// buffers — the per-seed reset of a simulation workspace.
    pub fn reset_for<G: Digraph>(
        &mut self,
        g: &G,
        exempt: impl IntoIterator<Item = VertexId>,
        inst: &FailureInstance,
    ) {
        assert_eq!(inst.len(), g.num_edges(), "instance/graph size mismatch");
        let n = g.num_vertices();
        self.failed_deg.clear();
        self.failed_deg.resize(n, 0);
        self.exempt.clear();
        self.exempt.resize(n, false);
        for t in exempt {
            self.exempt[t.index()] = true;
        }
        self.alive.clear();
        self.alive.resize(n, true);
        let mut scratch = Vec::new();
        for e in inst.failed_edges() {
            let (t, h) = g.endpoints(e);
            self.count_failure(t, h, &mut scratch);
        }
    }

    /// The maintained routable alive-mask.
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// Whether `v` is currently alive.
    #[inline]
    pub fn is_alive(&self, v: VertexId) -> bool {
        self.alive[v.index()]
    }

    /// Registers the failure of the switch `(tail, head)` and appends
    /// the vertices it newly discarded (0, 1 or 2) to `newly_dead`.
    /// O(1). The caller transitions the switch state in its own
    /// [`FailureInstance`]; a switch must not be failed twice without an
    /// intervening repair.
    pub fn fail_edge(&mut self, tail: VertexId, head: VertexId, newly_dead: &mut Vec<VertexId>) {
        self.count_failure(tail, head, newly_dead);
    }

    /// Registers the repair of the switch `(tail, head)` and appends the
    /// vertices it revived (0, 1 or 2) to `newly_alive`. O(1).
    pub fn repair_edge(&mut self, tail: VertexId, head: VertexId, newly_alive: &mut Vec<VertexId>) {
        for v in Self::endpoints_once(tail, head) {
            let d = &mut self.failed_deg[v.index()];
            debug_assert!(*d > 0, "repairing a switch that was not failed");
            *d -= 1;
            if *d == 0 && !self.exempt[v.index()] {
                debug_assert!(!self.alive[v.index()]);
                self.alive[v.index()] = true;
                newly_alive.push(v);
            }
        }
    }

    fn count_failure(&mut self, tail: VertexId, head: VertexId, newly_dead: &mut Vec<VertexId>) {
        for v in Self::endpoints_once(tail, head) {
            let d = &mut self.failed_deg[v.index()];
            *d += 1;
            if *d == 1 && !self.exempt[v.index()] {
                debug_assert!(self.alive[v.index()]);
                self.alive[v.index()] = false;
                newly_dead.push(v);
            }
        }
    }

    /// The endpoint pair, deduplicated for self-loops.
    fn endpoints_once(tail: VertexId, head: VertexId) -> impl Iterator<Item = VertexId> {
        std::iter::once(tail).chain((head != tail).then_some(head))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FailureModel, SwitchState};
    use ft_graph::gen::rng;
    use ft_graph::ids::{v, EdgeId};
    use ft_graph::DiGraph;
    use rand::Rng;

    fn diamond() -> DiGraph {
        let mut g = DiGraph::new();
        g.add_vertices(4);
        g.add_edge(v(0), v(1)); // e0
        g.add_edge(v(0), v(2)); // e1
        g.add_edge(v(1), v(3)); // e2
        g.add_edge(v(2), v(3)); // e3
        g
    }

    /// Scratch reference: exempt ∨ no incident failed switch.
    fn scratch_alive(g: &DiGraph, exempt: &[VertexId], inst: &FailureInstance) -> Vec<bool> {
        let mut alive = vec![true; ft_graph::Digraph::num_vertices(g)];
        for e in inst.failed_edges() {
            let (t, h) = ft_graph::Digraph::endpoints(g, e);
            alive[t.index()] = false;
            alive[h.index()] = false;
        }
        for &t in exempt {
            alive[t.index()] = true;
        }
        alive
    }

    #[test]
    fn deltas_track_single_failure_and_repair() {
        let g = diamond();
        let exempt = [v(0), v(3)];
        let mut inst = FailureInstance::perfect(4);
        let mut tracker = AliveTracker::new(&g, exempt.iter().copied(), &inst);
        assert!(tracker.alive().iter().all(|&a| a));

        let mut delta = Vec::new();
        inst.set_state(EdgeId::from(2usize), SwitchState::Open); // (1,3)
        tracker.fail_edge(v(1), v(3), &mut delta);
        assert_eq!(delta, vec![v(1)], "terminal 3 is exempt");
        assert_eq!(tracker.alive(), scratch_alive(&g, &exempt, &inst));

        // second incident failure keeps v1 dead, adds nothing
        delta.clear();
        inst.set_state(EdgeId::from(0usize), SwitchState::Closed); // (0,1)
        tracker.fail_edge(v(0), v(1), &mut delta);
        assert!(delta.is_empty());
        assert_eq!(tracker.alive(), scratch_alive(&g, &exempt, &inst));

        // repairing one of the two does NOT revive v1 yet
        delta.clear();
        inst.set_state(EdgeId::from(2usize), SwitchState::Normal);
        tracker.repair_edge(v(1), v(3), &mut delta);
        assert!(delta.is_empty());
        assert_eq!(tracker.alive(), scratch_alive(&g, &exempt, &inst));

        // the second repair does
        delta.clear();
        inst.set_state(EdgeId::from(0usize), SwitchState::Normal);
        tracker.repair_edge(v(0), v(1), &mut delta);
        assert_eq!(delta, vec![v(1)]);
        assert!(tracker.alive().iter().all(|&a| a));
    }

    #[test]
    fn random_churn_stays_equal_to_scratch() {
        let mut r = rng(17);
        let g = {
            let mut g = DiGraph::new();
            g.add_vertices(12);
            for _ in 0..30 {
                let a = r.random_range(0..12u32);
                let b = r.random_range(0..12u32);
                g.add_edge(v(a), v(b)); // self-loops included
            }
            g
        };
        let m = ft_graph::Digraph::num_edges(&g);
        let exempt = [v(0), v(11)];
        let mut inst = FailureInstance::perfect(m);
        let mut tracker = AliveTracker::new(&g, exempt.iter().copied(), &inst);
        let mut failed: Vec<usize> = Vec::new();
        let mut delta = Vec::new();
        for _ in 0..500 {
            delta.clear();
            let repair = !failed.is_empty() && r.random_bool(0.5);
            if repair {
                let e = failed.swap_remove(r.random_range(0..failed.len()));
                inst.set_state(EdgeId::from(e), SwitchState::Normal);
                let (t, h) = ft_graph::Digraph::endpoints(&g, EdgeId::from(e));
                tracker.repair_edge(t, h, &mut delta);
            } else {
                let healthy: Vec<usize> = (0..m)
                    .filter(|&e| inst.is_normal(EdgeId::from(e)))
                    .collect();
                if healthy.is_empty() {
                    continue;
                }
                let e = healthy[r.random_range(0..healthy.len())];
                inst.set_state(EdgeId::from(e), SwitchState::Open);
                failed.push(e);
                let (t, h) = ft_graph::Digraph::endpoints(&g, EdgeId::from(e));
                tracker.fail_edge(t, h, &mut delta);
            }
            assert_eq!(tracker.alive(), scratch_alive(&g, &exempt, &inst));
            // every delta vertex really flipped state
            for &d in &delta {
                assert!(!exempt.contains(&d));
            }
        }
    }

    #[test]
    fn reset_resynchronises_to_sampled_instance() {
        let g = diamond();
        let model = FailureModel::symmetric(0.3);
        let mut r = rng(5);
        let mut tracker = AliveTracker::default();
        for _ in 0..20 {
            let inst = FailureInstance::sample(&model, &mut r, 4);
            tracker.reset_for(&g, [v(0)], &inst);
            assert_eq!(tracker.alive(), scratch_alive(&g, &[v(0)], &inst));
        }
    }
}
