//! Explicit `(ε, ε′)-1-networks` — Proposition 1 (Moore & Shannon).
//!
//! Given `0 < ε < ½` and `0 < ε′ < ε`, build a two-terminal network in
//! which each switch fails open/closed with probability ε, yet the whole
//! network opens or shorts with probability < ε′ — using
//! `O((log₂ 1/ε′)²)` switches and `O(log₂ 1/ε′)` depth, constants
//! depending only on ε.
//!
//! Construction, certified *exactly* (no union bounds — every level's
//! failure pair is computed by enumeration or the series-parallel
//! calculus):
//!
//! 1. **Pre-amplification** (constant size): while the failure pair
//!    exceeds 0.1, substitute every switch with a Wheatstone bridge.
//!    The bridge is self-dual and amplifies for all ε < ½ (verified by
//!    exact state enumeration at each step), so a constant number of
//!    levels — depending only on ε — suffices. Size ×5, depth ×3 per
//!    level.
//! 2. **Quad squaring**: iterate the 4-switch composition
//!    `Q(N) = parallel(series(N, N), series(N, N))`, whose exact map is
//!    `o′ = (2o − o²)²`, `s′ = 2s² − s⁴`. Below 0.1 both modes square
//!    each level, so `j = log₂ log(1/ε′) + O(1)` levels reach ε′ with
//!    size `4^j = O((log 1/ε′)²)` and depth `2^j = O(log 1/ε′)` —
//!    exactly Proposition 1's form.

use crate::edge_replace::{iterate_gadget, substitute};
use crate::reliability::{bridge, bridge_map, FailureProbs, TwoTerminal};
use crate::sp::SpNetwork;

/// An explicit (ε, ε′)-1-network with its certification data.
#[derive(Clone, Debug)]
pub struct OneNet {
    /// The materialised network.
    pub net: TwoTerminal,
    /// Bridge pre-amplification levels applied (0 when ε is already small).
    pub preamp_levels: usize,
    /// Per-switch failure pair after pre-amplification.
    pub amplified: FailureProbs,
    /// Quad-squaring levels applied on top of the pre-amplifier.
    pub quad_levels: usize,
    /// Exact failure pair of the final network (each mode < ε′).
    pub certified: FailureProbs,
}

impl OneNet {
    /// Number of switches.
    pub fn size(&self) -> usize {
        self.net.graph.num_edges()
    }

    /// Depth: longest source→sink path in switches.
    pub fn depth(&self) -> u32 {
        ft_graph::traversal::dag_depth_between(
            &self.net.graph,
            &[self.net.source],
            &[self.net.sink],
        )
        .expect("one-network must connect its terminals")
    }
}

/// Pre-amplification threshold: below this the quad map strictly
/// contracts (o′ ≤ 4o² ≤ 0.4·o).
const QUAD_COMFORT: f64 = 0.1;

/// The exact quad map: `Q(N) = parallel(series(N,N), series(N,N))`.
pub fn quad_map(p: FailureProbs) -> FailureProbs {
    let series_open = 1.0 - (1.0 - p.p_open) * (1.0 - p.p_open);
    let series_short = p.p_short * p.p_short;
    FailureProbs {
        p_open: series_open * series_open,
        p_short: 1.0 - (1.0 - series_short) * (1.0 - series_short),
    }
}

/// Computes the number of bridge levels and the resulting failure pair
/// needed to bring `(ε, ε)` under `QUAD_COMFORT`.
///
/// # Panics
/// Panics if ε ≥ ½ (amplification impossible: ½ is the bridge's fixed
/// point) or if 200 levels do not suffice (unreachable for ε ≤ 0.499).
pub fn preamp_schedule(eps: f64) -> (usize, FailureProbs) {
    assert!(
        (0.0..0.5).contains(&eps),
        "Proposition 1 requires 0 ≤ ε < 1/2, got {eps}"
    );
    let mut p = FailureProbs {
        p_open: eps,
        p_short: eps,
    };
    let mut levels = 0usize;
    while p.max() > QUAD_COMFORT {
        let next = bridge_map(p);
        assert!(
            next.max() < p.max(),
            "bridge failed to amplify at {p:?} (ε too close to 1/2?)"
        );
        p = next;
        levels += 1;
        assert!(levels <= 200, "pre-amplification diverged");
    }
    (levels, p)
}

/// Number of quad levels needed to bring `p` (both modes ≤ 0.1) below
/// `eps_prime`, together with the exact resulting pair.
pub fn quad_schedule(p: FailureProbs, eps_prime: f64) -> (usize, FailureProbs) {
    assert!(eps_prime > 0.0, "ε′ must be positive");
    assert!(
        p.max() <= QUAD_COMFORT,
        "quad_schedule expects pre-amplified inputs"
    );
    let mut cur = p;
    let mut levels = 0usize;
    while cur.max() >= eps_prime {
        cur = quad_map(cur);
        levels += 1;
        assert!(levels <= 64, "quad iteration diverged");
    }
    (levels, cur)
}

/// The quad network as a series-parallel composition tree with `levels`
/// levels (level 0 = single switch).
pub fn quad_sp(levels: usize) -> SpNetwork {
    let mut net = SpNetwork::Switch;
    for _ in 0..levels {
        let chain = SpNetwork::Series(vec![net.clone(), net]);
        net = SpNetwork::Parallel(vec![chain.clone(), chain]);
    }
    net
}

/// Builds an explicit (ε, ε′)-1-network per Proposition 1.
///
/// # Panics
/// Panics unless `0 < ε′ < ε < ½`.
pub fn construct_onenet(eps: f64, eps_prime: f64) -> OneNet {
    assert!(
        0.0 < eps_prime && eps_prime < eps && eps < 0.5,
        "Proposition 1 requires 0 < ε′ < ε < 1/2 (got ε={eps}, ε′={eps_prime})"
    );
    let (preamp_levels, amplified) = preamp_schedule(eps);
    let (quad_levels, certified) = quad_schedule(amplified, eps_prime);
    let skeleton = quad_sp(quad_levels).to_two_terminal();
    let net = if preamp_levels == 0 {
        skeleton
    } else {
        let gadget = iterate_gadget(&bridge(), preamp_levels);
        let sub = substitute(&skeleton.graph, &gadget);
        TwoTerminal {
            graph: sub.graph,
            source: skeleton.source,
            sink: skeleton.sink,
        }
    };
    OneNet {
        net,
        preamp_levels,
        amplified,
        quad_levels,
        certified,
    }
}

/// The Proposition 1 size form `c·(log₂ 1/ε′)²`: returns the constant
/// `c = size / (log₂ 1/ε′)²` achieved by a constructed network.
pub fn size_constant(net: &OneNet, eps_prime: f64) -> f64 {
    let lg = (1.0 / eps_prime).log2();
    net.size() as f64 / (lg * lg)
}

/// The Proposition 1 depth form `d·log₂ 1/ε′`: returns the achieved
/// constant `d`.
pub fn depth_constant(net: &OneNet, eps_prime: f64) -> f64 {
    let lg = (1.0 / eps_prime).log2();
    net.depth() as f64 / lg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FailureModel;
    use crate::reliability::Connectivity;

    #[test]
    fn quad_map_matches_sp_calculus() {
        let leaf = FailureProbs {
            p_open: 0.07,
            p_short: 0.04,
        };
        let map = quad_map(leaf);
        let sp = quad_sp(1).failure_probs_from(leaf);
        assert!((map.p_open - sp.p_open).abs() < 1e-15);
        assert!((map.p_short - sp.p_short).abs() < 1e-15);
        // two levels
        let map2 = quad_map(map);
        let sp2 = quad_sp(2).failure_probs_from(leaf);
        assert!((map2.p_open - sp2.p_open).abs() < 1e-15);
        assert!((map2.p_short - sp2.p_short).abs() < 1e-15);
    }

    #[test]
    fn quad_contracts_below_comfort() {
        let p = FailureProbs {
            p_open: 0.1,
            p_short: 0.1,
        };
        let q = quad_map(p);
        assert!(q.p_open < 0.05 && q.p_short < 0.05);
    }

    #[test]
    fn preamp_noop_when_small() {
        let (levels, p) = preamp_schedule(0.05);
        assert_eq!(levels, 0);
        assert_eq!(p.p_open, 0.05);
    }

    #[test]
    fn preamp_handles_large_eps() {
        for eps in [0.2, 0.3, 0.4, 0.45] {
            let (levels, p) = preamp_schedule(eps);
            assert!(levels > 0, "ε={eps} needs pre-amplification");
            assert!(p.max() <= QUAD_COMFORT);
            // symmetric stays symmetric (self-duality)
            assert!((p.p_open - p.p_short).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "requires 0 ≤ ε < 1/2")]
    fn preamp_rejects_half() {
        preamp_schedule(0.5);
    }

    #[test]
    fn quad_levels_grow_like_loglog() {
        let p = FailureProbs {
            p_open: 0.05,
            p_short: 0.05,
        };
        let (j3, c3) = quad_schedule(p, 1e-3);
        let (j6, c6) = quad_schedule(p, 1e-6);
        let (j12, c12) = quad_schedule(p, 1e-12);
        assert!(c3.max() < 1e-3 && c6.max() < 1e-6 && c12.max() < 1e-12);
        assert!(j3 <= j6 && j6 <= j12);
        // doubling log(1/ε′) adds ~1 level
        assert!(j12 <= j6 + 2, "j6={j6}, j12={j12}");
    }

    #[test]
    fn onenet_small_eps_has_no_preamp() {
        let net = construct_onenet(0.05, 1e-4);
        assert_eq!(net.preamp_levels, 0);
        assert!(net.certified.p_open < 1e-4);
        assert!(net.certified.p_short < 1e-4);
        assert_eq!(net.size(), 4usize.pow(net.quad_levels as u32));
        assert_eq!(net.depth(), 2u32.pow(net.quad_levels as u32));
    }

    #[test]
    fn onenet_large_eps_preamps() {
        let net = construct_onenet(0.4, 1e-2);
        assert!(net.preamp_levels > 0);
        assert!(net.certified.max() < 1e-2);
        assert_eq!(
            net.size(),
            4usize.pow(net.quad_levels as u32) * 5usize.pow(net.preamp_levels as u32)
        );
    }

    #[test]
    fn onenet_certification_is_exact_small() {
        // small enough instance to cross-check certification by full
        // enumeration: ε=0.2 → 1 bridge level (5 edges) then quads
        let net = construct_onenet(0.2, 0.05);
        if net.size() <= 13 {
            let model = FailureModel::symmetric(0.2);
            let exact = net
                .net
                .exact_failure_probs(&model, Connectivity::Undirected);
            assert!((exact.p_open - net.certified.p_open).abs() < 1e-12);
            assert!((exact.p_short - net.certified.p_short).abs() < 1e-12);
        }
    }

    #[test]
    fn onenet_mc_respects_certificate() {
        let net = construct_onenet(0.15, 0.02);
        let model = FailureModel::symmetric(0.15);
        let (open, short) = net
            .net
            .mc_failure_probs(&model, Connectivity::Undirected, 20_000, 23);
        // MC must agree with the exact certificate within CI slack
        assert!(open.wilson95().0 <= net.certified.p_open + 0.005);
        assert!(short.wilson95().0 <= net.certified.p_short + 0.005);
        assert!(open.p() < 0.02 + 0.01);
        assert!(short.p() < 0.02 + 0.01);
    }

    #[test]
    fn proposition1_scaling_constants_are_bounded() {
        // constants c, d must stay bounded as ε′ shrinks (fixed ε)
        for eps_prime in [1e-2, 1e-4, 1e-8, 1e-12] {
            let net = construct_onenet(0.05, eps_prime);
            let c = size_constant(&net, eps_prime);
            let d = depth_constant(&net, eps_prime);
            assert!(c < 8.0, "size constant {c} too large at ε′={eps_prime}");
            assert!(d < 4.0, "depth constant {d} too large at ε′={eps_prime}");
        }
    }

    #[test]
    fn materialised_onenet_is_dag_with_terminals() {
        let net = construct_onenet(0.3, 1e-3);
        assert!(ft_graph::traversal::is_acyclic(&net.net.graph));
        let b = ft_graph::traversal::bfs_forward(&net.net.graph, net.net.source);
        assert!(b.reached(net.net.sink));
    }

    #[test]
    #[should_panic(expected = "requires 0 < ε′ < ε < 1/2")]
    fn onenet_rejects_bad_params() {
        construct_onenet(0.1, 0.2);
    }
}
