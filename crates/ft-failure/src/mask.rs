//! Word-packed failure masks: two bits per switch.
//!
//! A failure instance over `m` switches was previously a
//! `Vec<SwitchState>` — one byte per switch, 1 MB per trial at the
//! 10⁶-edge scale, re-zeroed byte by byte every Monte Carlo trial.
//! [`FailureMask`] packs the three states into two bits per switch
//! (`00` normal, `01` open, `10` closed; `11` never occurs), so:
//!
//! * clearing touches 1/4 of the memory (and is a plain word memset);
//! * `counts` is two `popcount`s per 32 switches;
//! * iterating failed/closed switches skips whole all-normal words —
//!   at the paper's tiny ε almost every word is skipped, making
//!   fault-dependent passes (repair, contraction) O(failures), not O(m);
//! * the dense sampling regime can fill a whole word (32 switches) with
//!   one store.

use crate::model::SwitchState;

/// Bit-plane of the `open` bits within one word (even positions).
const OPEN_PLANE: u64 = 0x5555_5555_5555_5555;
/// Bit-plane of the `closed` bits within one word (odd positions).
const CLOSED_PLANE: u64 = 0xAAAA_AAAA_AAAA_AAAA;
/// Switches per 64-bit word.
pub(crate) const PER_WORD: usize = 32;

/// A packed assignment of a [`SwitchState`] to each of `len` switches.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FailureMask {
    pub(crate) words: Vec<u64>,
    len: usize,
}

impl FailureMask {
    /// An all-normal mask over `len` switches.
    pub fn new(len: usize) -> Self {
        FailureMask {
            words: vec![0; len.div_ceil(PER_WORD)],
            len,
        }
    }

    /// Resets to all-normal over `len` switches, reusing the allocation.
    pub fn reset(&mut self, len: usize) {
        let words = len.div_ceil(PER_WORD);
        self.words.clear();
        self.words.resize(words, 0);
        self.len = len;
    }

    /// Number of switches covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask covers zero switches.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// State of switch `i`.
    #[inline]
    pub fn state(&self, i: usize) -> SwitchState {
        debug_assert!(i < self.len);
        match (self.words[i / PER_WORD] >> ((i % PER_WORD) * 2)) & 3 {
            0 => SwitchState::Normal,
            1 => SwitchState::Open,
            2 => SwitchState::Closed,
            _ => unreachable!("11 code never written"),
        }
    }

    /// Sets the state of switch `i`.
    #[inline]
    pub fn set(&mut self, i: usize, s: SwitchState) {
        debug_assert!(i < self.len);
        let shift = (i % PER_WORD) * 2;
        let w = &mut self.words[i / PER_WORD];
        *w = (*w & !(3 << shift)) | ((s as u64) << shift);
    }

    /// Whether switch `i` is in the normal state.
    #[inline]
    pub fn is_normal(&self, i: usize) -> bool {
        (self.words[i / PER_WORD] >> ((i % PER_WORD) * 2)) & 3 == 0
    }

    /// Whether switch `i` still conducts (normal or closed).
    #[inline]
    pub fn is_usable(&self, i: usize) -> bool {
        (self.words[i / PER_WORD] >> ((i % PER_WORD) * 2)) & 1 == 0
    }

    /// Whether switch `i` is closed-failed.
    #[inline]
    pub fn is_closed(&self, i: usize) -> bool {
        (self.words[i / PER_WORD] >> ((i % PER_WORD) * 2)) & 2 != 0
    }

    /// `(open, closed, normal)` counts — two popcounts per word.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut open = 0usize;
        let mut closed = 0usize;
        for &w in &self.words {
            open += (w & OPEN_PLANE).count_ones() as usize;
            closed += (w & CLOSED_PLANE).count_ones() as usize;
        }
        (open, closed, self.len - open - closed)
    }

    /// Indices of all failed (non-normal) switches, ascending. Skips
    /// all-normal words, so iteration is O(words + failures).
    pub fn iter_failed(&self) -> impl Iterator<Item = usize> + '_ {
        self.iter_plane(OPEN_PLANE | CLOSED_PLANE)
    }

    /// Indices of all closed-failed switches, ascending.
    pub fn iter_closed(&self) -> impl Iterator<Item = usize> + '_ {
        self.iter_plane(CLOSED_PLANE)
    }

    /// Indices of all open-failed switches, ascending.
    pub fn iter_open(&self) -> impl Iterator<Item = usize> + '_ {
        self.iter_plane(OPEN_PLANE)
    }

    fn iter_plane(&self, plane: u64) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut bits = w & plane;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * PER_WORD + tz / 2)
            })
        })
    }

    /// Unpacks into a state vector (tests, debugging).
    pub fn to_states(&self) -> Vec<SwitchState> {
        (0..self.len).map(|i| self.state(i)).collect()
    }

    /// Packs a state slice into a fresh mask.
    pub fn from_states(states: &[SwitchState]) -> Self {
        let mut mask = FailureMask::new(states.len());
        for (i, &s) in states.iter().enumerate() {
            if s != SwitchState::Normal {
                mask.set(i, s);
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FailureModel;
    use ft_graph::gen::rng;

    #[test]
    fn set_get_roundtrip() {
        let mut m = FailureMask::new(100);
        assert_eq!(m.len(), 100);
        assert!(!m.is_empty());
        m.set(0, SwitchState::Open);
        m.set(31, SwitchState::Closed);
        m.set(32, SwitchState::Closed);
        m.set(99, SwitchState::Open);
        assert_eq!(m.state(0), SwitchState::Open);
        assert_eq!(m.state(31), SwitchState::Closed);
        assert_eq!(m.state(32), SwitchState::Closed);
        assert_eq!(m.state(99), SwitchState::Open);
        assert_eq!(m.state(50), SwitchState::Normal);
        // overwrite back to normal
        m.set(31, SwitchState::Normal);
        assert_eq!(m.state(31), SwitchState::Normal);
        assert_eq!(m.counts(), (2, 1, 97));
    }

    #[test]
    fn predicates_match_states() {
        let states = [
            SwitchState::Normal,
            SwitchState::Open,
            SwitchState::Closed,
            SwitchState::Normal,
        ];
        let m = FailureMask::from_states(&states);
        for (i, &s) in states.iter().enumerate() {
            assert_eq!(m.state(i), s);
            assert_eq!(m.is_normal(i), s == SwitchState::Normal);
            assert_eq!(m.is_usable(i), s != SwitchState::Open);
            assert_eq!(m.is_closed(i), s == SwitchState::Closed);
        }
        assert_eq!(m.to_states(), states);
    }

    #[test]
    fn iterators_skip_normal_words() {
        let mut m = FailureMask::new(1000);
        m.set(3, SwitchState::Open);
        m.set(64, SwitchState::Closed);
        m.set(999, SwitchState::Closed);
        assert_eq!(m.iter_failed().collect::<Vec<_>>(), vec![3, 64, 999]);
        assert_eq!(m.iter_closed().collect::<Vec<_>>(), vec![64, 999]);
        assert_eq!(m.iter_open().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn reset_reuses_allocation() {
        let mut m = FailureMask::new(64);
        m.set(10, SwitchState::Open);
        m.reset(32);
        assert_eq!(m.len(), 32);
        assert_eq!(m.counts(), (0, 0, 32));
        m.reset(128);
        assert_eq!(m.counts(), (0, 0, 128));
    }

    #[test]
    fn iterators_match_sampled_instances() {
        let model = FailureModel::new(0.05, 0.08);
        let mut r = rng(17);
        let mut mask = FailureMask::new(0);
        for _ in 0..10 {
            model.sample_into(&mut r, 500, &mut mask);
            let states = mask.to_states();
            let failed: Vec<usize> = states
                .iter()
                .enumerate()
                .filter(|(_, &s)| s != SwitchState::Normal)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(mask.iter_failed().collect::<Vec<_>>(), failed);
            let closed: Vec<usize> = states
                .iter()
                .enumerate()
                .filter(|(_, &s)| s == SwitchState::Closed)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(mask.iter_closed().collect::<Vec<_>>(), closed);
        }
    }

    #[test]
    fn empty_mask() {
        let m = FailureMask::new(0);
        assert!(m.is_empty());
        assert_eq!(m.counts(), (0, 0, 0));
        assert_eq!(m.iter_failed().count(), 0);
    }
}
