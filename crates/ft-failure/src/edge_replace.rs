//! Edge substitution: replace every switch by a two-terminal gadget.
//!
//! §3's invariance arguments rest on this transformation: substituting an
//! `(ε₂, ε₁)-1-network` for each edge of an `(ε₁, δ)-X` network yields an
//! `(ε₂, δ)-X` network whose size grows by the gadget's size factor and
//! depth by the gadget's depth factor. The substitution is purely
//! structural; this module implements it for arbitrary digraphs.

use crate::reliability::TwoTerminal;
use ft_graph::ids::{EdgeId, VertexId};
use ft_graph::{DiGraph, Digraph};

/// Result of substituting a gadget for every edge.
#[derive(Clone, Debug)]
pub struct Substituted {
    /// The expanded graph. Vertices `0..n` are the original vertices
    /// (ids preserved); gadget interiors follow.
    pub graph: DiGraph,
    /// For every new edge, the original edge it implements.
    pub edge_origin: Vec<EdgeId>,
}

/// Replaces each edge `(u, w)` of `g` by a copy of `gadget`, identifying
/// the gadget's source with `u` and sink with `w`; gadget interior
/// vertices are freshly allocated per edge.
pub fn substitute<G: Digraph>(g: &G, gadget: &TwoTerminal) -> Substituted {
    let n = g.num_vertices();
    let gn = gadget.graph.num_vertices();
    let gm = gadget.graph.num_edges();
    // interior = gadget vertices other than its terminals
    let interior: Vec<VertexId> = (0..gn)
        .map(VertexId::from)
        .filter(|&v| v != gadget.source && v != gadget.sink)
        .collect();
    let mut out = DiGraph::with_capacity(n + interior.len() * g.num_edges(), gm * g.num_edges());
    out.add_vertices(n);
    let mut edge_origin = Vec::with_capacity(gm * g.num_edges());
    // map from gadget vertex -> new vertex, rebuilt per edge
    let mut map = vec![VertexId::NONE; gn];
    for eid in 0..g.num_edges() {
        let e = EdgeId::from(eid);
        let (tail, head) = g.endpoints(e);
        map[gadget.source.index()] = tail;
        map[gadget.sink.index()] = head;
        let first = out.add_vertices(interior.len());
        for (k, &iv) in interior.iter().enumerate() {
            map[iv.index()] = VertexId::from(first.index() + k);
        }
        for ge in 0..gm {
            let (gt, gh) = gadget.graph.endpoints(EdgeId::from(ge));
            out.add_edge(map[gt.index()], map[gh.index()]);
            edge_origin.push(e);
        }
    }
    Substituted {
        graph: out,
        edge_origin,
    }
}

/// Iterates substitution on a two-terminal network: level 0 is a single
/// switch, level `k` substitutes `gadget` into every switch of level
/// `k−1`. Size is `gadget.size^k`, depth ≤ `gadget_depth^k`.
pub fn iterate_gadget(gadget: &TwoTerminal, levels: usize) -> TwoTerminal {
    let mut current = crate::reliability::single_switch();
    for _ in 0..levels {
        // substituting the gadget INTO each edge of `current`
        let sub = substitute(&current.graph, gadget);
        current = TwoTerminal {
            graph: sub.graph,
            source: current.source,
            sink: current.sink,
        };
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FailureModel;
    use crate::reliability::{bridge, bridge_map, single_switch, Connectivity, FailureProbs};
    use ft_graph::ids::v;

    #[test]
    fn substitute_single_edge_with_bridge() {
        let sw = single_switch();
        let sub = substitute(&sw.graph, &bridge());
        // 2 original + 2 interior, 5 edges
        assert_eq!(sub.graph.num_vertices(), 4);
        assert_eq!(sub.graph.num_edges(), 5);
        assert!(sub.edge_origin.iter().all(|&e| e == ft_graph::ids::e(0)));
    }

    #[test]
    fn substitute_preserves_terminal_ids() {
        // chain of 2 edges, substitute bridge into each
        let mut g = DiGraph::new();
        g.add_vertices(3);
        g.add_edge(v(0), v(1));
        g.add_edge(v(1), v(2));
        let sub = substitute(&g, &bridge());
        assert_eq!(sub.graph.num_vertices(), 3 + 2 * 2);
        assert_eq!(sub.graph.num_edges(), 10);
        // connectivity from 0 still reaches 2 (undirected or directed
        // through forward bridge edges)
        let b = ft_graph::traversal::bfs_forward(&sub.graph, v(0));
        assert!(b.reached(v(2)));
        // edge origins: first 5 edges from e0, next 5 from e1
        assert!(sub.edge_origin[..5]
            .iter()
            .all(|&e| e == ft_graph::ids::e(0)));
        assert!(sub.edge_origin[5..]
            .iter()
            .all(|&e| e == ft_graph::ids::e(1)));
    }

    #[test]
    fn iterated_bridge_sizes() {
        let b = bridge();
        for levels in 0..3 {
            let net = iterate_gadget(&b, levels);
            assert_eq!(net.graph.num_edges(), 5usize.pow(levels as u32));
        }
    }

    #[test]
    fn iterated_bridge_reliability_matches_map() {
        // The physical level-2 bridge must have exactly the failure
        // probabilities predicted by composing the probability map —
        // 25 edges is too many to enumerate, so compare level 1 exactly
        // and level 2 by Monte Carlo.
        let model = FailureModel::symmetric(0.3);
        let level1 = iterate_gadget(&bridge(), 1);
        let exact1 = level1.exact_failure_probs(&model, Connectivity::Undirected);
        let map1 = bridge_map(FailureProbs::single_switch(&model));
        assert!((exact1.p_open - map1.p_open).abs() < 1e-12);
        assert!((exact1.p_short - map1.p_short).abs() < 1e-12);

        let map2 = bridge_map(map1);
        let level2 = iterate_gadget(&bridge(), 2);
        let (open, short) = level2.mc_failure_probs(&model, Connectivity::Undirected, 30_000, 5);
        let (olo, ohi) = open.wilson95();
        assert!(
            olo - 0.01 <= map2.p_open && map2.p_open <= ohi + 0.01,
            "map {} outside MC [{olo}, {ohi}]",
            map2.p_open
        );
        let (slo, shi) = short.wilson95();
        assert!(slo - 0.01 <= map2.p_short && map2.p_short <= shi + 0.01);
    }

    #[test]
    fn substitute_empty_graph() {
        let g = DiGraph::new();
        let sub = substitute(&g, &bridge());
        assert_eq!(sub.graph.num_vertices(), 0);
        assert_eq!(sub.graph.num_edges(), 0);
    }

    #[test]
    fn level_zero_is_single_switch() {
        let net = iterate_gadget(&bridge(), 0);
        assert_eq!(net.graph.num_edges(), 1);
        assert_eq!(net.graph.num_vertices(), 2);
    }
}
