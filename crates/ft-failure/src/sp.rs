//! Series-parallel two-terminal networks and their exact failure calculus.
//!
//! Moore & Shannon's composition rules: for networks with failure
//! probabilities `(o, s)` (open, short),
//!
//! * **series**: shorts only if *all* parts short, opens if *any* part
//!   opens — `s' = ∏ sᵢ`, `o' = 1 − ∏ (1 − oᵢ)`;
//! * **parallel**: opens only if *all* parts open, shorts if *any* part
//!   shorts — `o' = ∏ oᵢ`, `s' = 1 − ∏ (1 − sᵢ)`.
//!
//! These give exact probabilities in O(size) — no enumeration — and the
//! §3 invariance arguments (replace every switch by a 1-network) are pure
//! compositions in this calculus.

use crate::model::FailureModel;
use crate::reliability::{FailureProbs, TwoTerminal};
use ft_graph::DiGraph;

/// A series-parallel two-terminal network, as a composition tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpNetwork {
    /// A single switch.
    Switch,
    /// Sub-networks wired input-to-output in a chain.
    Series(Vec<SpNetwork>),
    /// Sub-networks sharing both terminals.
    Parallel(Vec<SpNetwork>),
}

impl SpNetwork {
    /// `n` copies of `sub` in series.
    pub fn series_of(n: usize, sub: SpNetwork) -> SpNetwork {
        assert!(n >= 1);
        SpNetwork::Series(vec![sub; n])
    }

    /// `n` copies of `sub` in parallel.
    pub fn parallel_of(n: usize, sub: SpNetwork) -> SpNetwork {
        assert!(n >= 1);
        SpNetwork::Parallel(vec![sub; n])
    }

    /// The `l × w` series-parallel ladder: `l` parallel strands, each a
    /// series of `w` switches. (The rung-free skeleton of a Moore–Shannon
    /// hammock; the grid hammock with rungs lives in [`crate::hammock`].)
    pub fn ladder(l: usize, w: usize) -> SpNetwork {
        SpNetwork::parallel_of(l, SpNetwork::series_of(w, SpNetwork::Switch))
    }

    /// Number of switches.
    pub fn size(&self) -> usize {
        match self {
            SpNetwork::Switch => 1,
            SpNetwork::Series(parts) => parts.iter().map(SpNetwork::size).sum(),
            SpNetwork::Parallel(parts) => parts.iter().map(SpNetwork::size).sum(),
        }
    }

    /// Depth: the largest number of switches on a terminal-to-terminal
    /// path.
    pub fn depth(&self) -> usize {
        match self {
            SpNetwork::Switch => 1,
            SpNetwork::Series(parts) => parts.iter().map(SpNetwork::depth).sum(),
            SpNetwork::Parallel(parts) => parts.iter().map(SpNetwork::depth).max().unwrap_or(0),
        }
    }

    /// Exact failure probabilities when every switch has failure pair
    /// `leaf` — Moore–Shannon calculus, O(size).
    pub fn failure_probs_from(&self, leaf: FailureProbs) -> FailureProbs {
        match self {
            SpNetwork::Switch => leaf,
            SpNetwork::Series(parts) => {
                let mut not_open = 1.0;
                let mut short = 1.0;
                for part in parts {
                    let p = part.failure_probs_from(leaf);
                    not_open *= 1.0 - p.p_open;
                    short *= p.p_short;
                }
                FailureProbs {
                    p_open: 1.0 - not_open,
                    p_short: short,
                }
            }
            SpNetwork::Parallel(parts) => {
                let mut open = 1.0;
                let mut not_short = 1.0;
                for part in parts {
                    let p = part.failure_probs_from(leaf);
                    open *= p.p_open;
                    not_short *= 1.0 - p.p_short;
                }
                FailureProbs {
                    p_open: open,
                    p_short: 1.0 - not_short,
                }
            }
        }
    }

    /// Exact failure probabilities under the given switch failure model.
    pub fn failure_probs(&self, model: &FailureModel) -> FailureProbs {
        self.failure_probs_from(FailureProbs::single_switch(model))
    }

    /// Materialises the composition tree as a [`TwoTerminal`] graph
    /// (all edges oriented source → sink, so directed and undirected
    /// connectivity coincide).
    pub fn to_two_terminal(&self) -> TwoTerminal {
        let mut g = DiGraph::new();
        let s = g.add_vertex();
        let t = g.add_vertex();
        build(self, &mut g, s, t);
        return TwoTerminal {
            graph: g,
            source: s,
            sink: t,
        };

        fn build(net: &SpNetwork, g: &mut DiGraph, s: ft_graph::VertexId, t: ft_graph::VertexId) {
            match net {
                SpNetwork::Switch => {
                    g.add_edge(s, t);
                }
                SpNetwork::Series(parts) => {
                    let mut cur = s;
                    for (i, part) in parts.iter().enumerate() {
                        let next = if i + 1 == parts.len() {
                            t
                        } else {
                            g.add_vertex()
                        };
                        build(part, g, cur, next);
                        cur = next;
                    }
                }
                SpNetwork::Parallel(parts) => {
                    for part in parts {
                        build(part, g, s, t);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reliability::Connectivity;

    #[test]
    fn sizes_and_depths() {
        assert_eq!(SpNetwork::Switch.size(), 1);
        assert_eq!(SpNetwork::Switch.depth(), 1);
        let ladder = SpNetwork::ladder(3, 4);
        assert_eq!(ladder.size(), 12);
        assert_eq!(ladder.depth(), 4);
        let nested = SpNetwork::series_of(2, SpNetwork::parallel_of(3, SpNetwork::Switch));
        assert_eq!(nested.size(), 6);
        assert_eq!(nested.depth(), 2);
    }

    #[test]
    fn series_calculus() {
        let net = SpNetwork::series_of(2, SpNetwork::Switch);
        let model = FailureModel::new(0.1, 0.2);
        let p = net.failure_probs(&model);
        assert!((p.p_open - (1.0 - 0.81)).abs() < 1e-12);
        assert!((p.p_short - 0.04).abs() < 1e-12);
    }

    #[test]
    fn parallel_calculus() {
        let net = SpNetwork::parallel_of(2, SpNetwork::Switch);
        let model = FailureModel::new(0.1, 0.2);
        let p = net.failure_probs(&model);
        assert!((p.p_open - 0.01).abs() < 1e-12);
        assert!((p.p_short - (1.0 - 0.64)).abs() < 1e-12);
    }

    #[test]
    fn calculus_matches_enumeration() {
        // ladder(2, 2): small enough for exact enumeration on the graph
        let net = SpNetwork::ladder(2, 2);
        let model = FailureModel::new(0.15, 0.1);
        let calc = net.failure_probs(&model);
        let tt = net.to_two_terminal();
        let exact = tt.exact_failure_probs(&model, Connectivity::Undirected);
        assert!(
            (calc.p_open - exact.p_open).abs() < 1e-12,
            "{calc:?} vs {exact:?}"
        );
        assert!((calc.p_short - exact.p_short).abs() < 1e-12);
        // and directed agrees (all edges point forward)
        let exact_dir = tt.exact_failure_probs(&model, Connectivity::Directed);
        assert!((calc.p_open - exact_dir.p_open).abs() < 1e-12);
    }

    #[test]
    fn materialisation_shape() {
        let net = SpNetwork::ladder(3, 4);
        let tt = net.to_two_terminal();
        assert_eq!(tt.graph.num_edges(), 12);
        // 2 terminals + 3 strands × 3 interior vertices
        assert_eq!(tt.graph.num_vertices(), 2 + 9);
        assert!(ft_graph::traversal::is_acyclic(&tt.graph));
    }

    #[test]
    fn ladder_monotone_in_eps() {
        let net = SpNetwork::ladder(4, 4);
        let mut last = 0.0;
        for eps in [0.01, 0.05, 0.1, 0.2] {
            let p = net.failure_probs(&FailureModel::symmetric(eps));
            let total = p.p_open + p.p_short;
            assert!(total > last, "failure probability must grow with ε");
            last = total;
        }
    }

    #[test]
    fn square_ladder_amplifies_small_eps() {
        // k×k ladder with ε = 0.05: both failure modes should improve
        let net = SpNetwork::ladder(4, 4);
        let p = net.failure_probs(&FailureModel::symmetric(0.05));
        assert!(p.p_open < 0.05);
        assert!(p.p_short < 0.05);
    }

    #[test]
    fn perfect_model_never_fails() {
        let net = SpNetwork::ladder(2, 3);
        let p = net.failure_probs(&FailureModel::perfect());
        assert_eq!(p.p_open, 0.0);
        assert_eq!(p.p_short, 0.0);
    }
}
