//! Monte Carlo estimation with confidence intervals.
//!
//! Every probabilistic claim in the paper (Lemmas 3–7, Theorem 2's δ) is
//! reproduced by sampling failure instances. This module provides the
//! shared estimator: Bernoulli trials, Wilson score intervals (robust at
//! the extreme probabilities the paper lives at), and a threaded driver
//! for the expensive end-to-end experiments.

use crate::instance::FailureInstance;
use crate::model::FailureModel;
use crate::sliced::{block_seed, SlicedFailureMask, LANES};
use ft_graph::sliced::SlicedWorkspace;
use ft_graph::workspace::TraversalWorkspace;
use ft_graph::{Digraph, FlowWorkspace, UnionFind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A binomial estimate: `successes` out of `trials`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Estimate {
    /// Number of trials where the event held.
    pub successes: u64,
    /// Total number of trials.
    pub trials: u64,
}

impl Estimate {
    /// Point estimate `successes / trials`.
    pub fn p(&self) -> f64 {
        if self.trials == 0 {
            return f64::NAN;
        }
        self.successes as f64 / self.trials as f64
    }

    /// Wilson score interval at `z` standard normal quantiles
    /// (z = 1.96 ≈ 95%). Well-behaved when `successes` is 0 or `trials`.
    pub fn wilson(&self, z: f64) -> (f64, f64) {
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        let n = self.trials as f64;
        let p = self.p();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * ((p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt());
        ((center - half).max(0.0), (center + half).min(1.0))
    }

    /// 95% Wilson interval.
    pub fn wilson95(&self) -> (f64, f64) {
        self.wilson(1.959964)
    }

    /// Standard error of the point estimate.
    pub fn std_err(&self) -> f64 {
        let n = self.trials as f64;
        let p = self.p();
        (p * (1.0 - p) / n).sqrt()
    }

    /// Merges two independent estimates of the same quantity.
    pub fn merge(self, other: Estimate) -> Estimate {
        Estimate {
            successes: self.successes + other.successes,
            trials: self.trials + other.trials,
        }
    }
}

/// Runs `trials` Bernoulli trials of `event`, single-threaded and
/// deterministic in `seed`.
pub fn estimate_probability(
    trials: u64,
    seed: u64,
    mut event: impl FnMut(&mut SmallRng) -> bool,
) -> Estimate {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut successes = 0u64;
    for _ in 0..trials {
        if event(&mut rng) {
            successes += 1;
        }
    }
    Estimate { successes, trials }
}

/// Threaded variant: `make_worker(worker_seed)` builds a per-thread
/// closure that runs one trial. Deterministic for a fixed `(seed,
/// threads)` pair. Use when a single trial is expensive (end-to-end
/// routing experiments on reduced 𝒩 profiles).
pub fn estimate_probability_parallel<F>(
    trials: u64,
    threads: usize,
    seed: u64,
    make_worker: impl Fn(u64) -> F + Sync,
) -> Estimate
where
    F: FnMut(&mut SmallRng) -> bool + Send,
{
    let threads = threads.max(1);
    let per = trials / threads as u64;
    let extra = trials % threads as u64;
    let mut result = Estimate {
        successes: 0,
        trials: 0,
    };
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let quota = per + if (t as u64) < extra { 1 } else { 0 };
            let worker_seed =
                seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t as u64 + 1));
            let make_worker = &make_worker;
            handles.push(scope.spawn(move || {
                let mut worker = make_worker(worker_seed);
                estimate_probability(quota, worker_seed, &mut worker)
            }));
        }
        for h in handles {
            result = result.merge(h.join().expect("monte carlo worker panicked"));
        }
    });
    result
}

/// Per-worker scratch state for zero-allocation trial loops: one
/// traversal workspace, one flow workspace and one union–find, each
/// reused (and cleared in O(touched) / O(n)) across every trial the
/// worker runs.
#[derive(Clone, Debug)]
pub struct TrialScratch {
    /// BFS/Dinic workspace, cleared per use via epochs.
    pub ws: TraversalWorkspace,
    /// Vertex-disjoint-path workspace (flow network + arc tables).
    pub fw: FlowWorkspace,
    /// Union–find over the vertices, for contraction/shorting events.
    pub uf: UnionFind,
    /// Lane-parallel reachability workspace, for 64-trial block events.
    pub sws: SlicedWorkspace,
}

impl TrialScratch {
    /// Scratch for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        TrialScratch {
            ws: TraversalWorkspace::new(),
            fw: FlowWorkspace::new(),
            uf: UnionFind::new(num_vertices),
            sws: SlicedWorkspace::new(),
        }
    }
}

/// Outcome of one lane-parallel event evaluation over a 64-trial block.
///
/// Bit *i* of `decided` says lane *i*'s verdict is final; for those
/// lanes bit *i* of `success` is the verdict. Undecided lanes are
/// unpacked into scalar [`FailureInstance`]s and replayed through the
/// scalar event — the *scalar-fallback contract* for lanes that need a
/// full per-instance answer (disjoint-path counts, path extraction).
/// `success` bits of undecided lanes are ignored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaneVerdict {
    /// Lanes whose verdict is final.
    pub decided: u64,
    /// Per-lane verdicts (meaningful where `decided` is set).
    pub success: u64,
}

impl LaneVerdict {
    /// No lane decided: every trial of the block falls back to the
    /// scalar event.
    pub const UNDECIDED: LaneVerdict = LaneVerdict {
        decided: 0,
        success: 0,
    };

    /// Every lane decided with the given per-lane verdicts.
    pub fn all(success: u64) -> Self {
        LaneVerdict {
            decided: !0,
            success,
        }
    }
}

/// Bit-sliced threaded Monte Carlo: trials are grouped in blocks of
/// [`LANES`]; each block samples one [`SlicedFailureMask`] from its
/// [`block_seed`]-derived RNG and asks `lane_event` for all 64 verdicts
/// at once. Lanes the event leaves undecided are unpacked and replayed
/// through `scalar_event`; the trailing `trials % LANES` trials run
/// entirely scalar from the next block's seed.
///
/// A block's outcome depends only on `(seed, block index)` — never on
/// which worker ran it — so the estimate is **byte-identical across
/// thread counts** (the quota-splitting [`estimate_probability_parallel`]
/// does not have this property).
pub fn mc_sliced_event_probability_parallel<G, FL, FS>(
    g: &G,
    model: &FailureModel,
    trials: u64,
    threads: usize,
    seed: u64,
    lane_event: FL,
    scalar_event: FS,
) -> Estimate
where
    G: Digraph + Sync,
    FL: Fn(&G, &SlicedFailureMask, &mut TrialScratch) -> LaneVerdict + Sync,
    FS: Fn(&G, &FailureInstance, &mut TrialScratch) -> bool + Sync,
{
    let m = g.num_edges();
    let n = g.num_vertices();
    let threads = threads.max(1);
    let blocks = trials / LANES as u64;
    let rem = trials % LANES as u64;
    let lane_event = &lane_event;
    let scalar_event = &scalar_event;
    let mut successes = 0u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        let per = blocks / threads as u64;
        let extra = blocks % threads as u64;
        let mut next = 0u64;
        for t in 0..threads {
            let quota = per + ((t as u64) < extra) as u64;
            let range = next..next + quota;
            next += quota;
            handles.push(scope.spawn(move || {
                let mut sliced = SlicedFailureMask::new();
                let mut scratch = TrialScratch::new(n);
                let mut lane_inst = FailureInstance::perfect(m);
                let mut s = 0u64;
                for b in range {
                    let mut rng = SmallRng::seed_from_u64(block_seed(seed, b));
                    model.sample_sliced_into(&mut rng, m, &mut sliced);
                    let verdict = lane_event(g, &sliced, &mut scratch);
                    s += (verdict.success & verdict.decided).count_ones() as u64;
                    let mut undecided = !verdict.decided;
                    while undecided != 0 {
                        let lane = undecided.trailing_zeros() as usize;
                        undecided &= undecided - 1;
                        sliced.extract_lane_into(lane, lane_inst.mask_mut());
                        if scalar_event(g, &lane_inst, &mut scratch) {
                            s += 1;
                        }
                    }
                }
                s
            }));
        }
        for h in handles {
            successes += h.join().expect("monte carlo worker panicked");
        }
    });
    if rem > 0 {
        let mut rng = SmallRng::seed_from_u64(block_seed(seed, blocks));
        let mut inst = FailureInstance::perfect(m);
        let mut scratch = TrialScratch::new(n);
        for _ in 0..rem {
            inst.resample(model, &mut rng, m);
            if scalar_event(g, &inst, &mut scratch) {
                successes += 1;
            }
        }
    }
    Estimate { successes, trials }
}

/// Threaded Monte Carlo over failure instances of a fixed network:
/// **each worker owns one sliced mask and one scratch** for its whole
/// batch, so the per-trial cost is sampling (O(failures) at small ε)
/// plus whatever `event` touches — no allocation, no O(m) clearing.
///
/// `event(g, inst, scratch)` decides one trial. Trials are sampled in
/// [`LANES`]-sized blocks under the [`block_seed`] discipline and every
/// lane is unpacked for the scalar event (the all-lanes-undecided case
/// of [`mc_sliced_event_probability_parallel`]) — so the result is
/// deterministic in `seed` alone and **byte-identical across thread
/// counts**. Events that can decide whole blocks with word algebra
/// should call the sliced driver directly.
pub fn mc_event_probability_parallel<G, F>(
    g: &G,
    model: &FailureModel,
    trials: u64,
    threads: usize,
    seed: u64,
    event: F,
) -> Estimate
where
    G: Digraph + Sync,
    F: Fn(&G, &FailureInstance, &mut TrialScratch) -> bool + Sync,
{
    mc_sliced_event_probability_parallel(
        g,
        model,
        trials,
        threads,
        seed,
        |_, _, _| LaneVerdict::UNDECIDED,
        event,
    )
}

/// Draws a Binomial(n, p) sample — convenience for calibration tests.
pub fn binomial_sample(rng: &mut SmallRng, n: u64, p: f64) -> u64 {
    let mut k = 0;
    for _ in 0..n {
        if rng.random::<f64>() < p {
            k += 1;
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_estimate() {
        let e = Estimate {
            successes: 25,
            trials: 100,
        };
        assert!((e.p() - 0.25).abs() < 1e-12);
        assert!(e.std_err() > 0.0);
    }

    #[test]
    fn wilson_contains_point_estimate() {
        let e = Estimate {
            successes: 30,
            trials: 200,
        };
        let (lo, hi) = e.wilson95();
        assert!(lo < e.p() && e.p() < hi);
        assert!(lo > 0.0 && hi < 1.0);
    }

    #[test]
    fn wilson_extremes_are_sane() {
        let none = Estimate {
            successes: 0,
            trials: 100,
        };
        let (lo, hi) = none.wilson95();
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.1, "upper bound {hi}");
        let all = Estimate {
            successes: 100,
            trials: 100,
        };
        let (lo, hi) = all.wilson95();
        assert!(lo > 0.9);
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn zero_trials() {
        let e = Estimate {
            successes: 0,
            trials: 0,
        };
        assert!(e.p().is_nan());
        assert_eq!(e.wilson95(), (0.0, 1.0));
    }

    #[test]
    fn estimator_converges() {
        let e = estimate_probability(100_000, 7, |rng| rng.random::<f64>() < 0.3);
        assert!((e.p() - 0.3).abs() < 0.01, "estimate {}", e.p());
        let (lo, hi) = e.wilson95();
        assert!(lo < 0.3 && 0.3 < hi);
    }

    #[test]
    fn estimator_deterministic() {
        let a = estimate_probability(1000, 5, |rng| rng.random::<f64>() < 0.5);
        let b = estimate_probability(1000, 5, |rng| rng.random::<f64>() < 0.5);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_quota_and_converges() {
        let e = estimate_probability_parallel(10_001, 4, 11, |_| {
            |rng: &mut SmallRng| rng.random::<f64>() < 0.7
        });
        assert_eq!(e.trials, 10_001);
        assert!((e.p() - 0.7).abs() < 0.02, "estimate {}", e.p());
    }

    #[test]
    fn parallel_single_thread_matches_serial_shape() {
        let e = estimate_probability_parallel(500, 1, 13, |_| {
            |rng: &mut SmallRng| rng.random::<f64>() < 0.2
        });
        assert_eq!(e.trials, 500);
    }

    #[test]
    fn worker_owned_scratch_driver_converges() {
        use ft_graph::ids::v;
        use ft_graph::traversal::{bfs_into, Direction};
        use ft_graph::DiGraph;
        // two-edge chain 0 -> 1 -> 2; P(0 reaches 2 through usable
        // switches) = (1 − ε₁)²
        let mut g = DiGraph::new();
        g.add_vertices(3);
        g.add_edge(v(0), v(1));
        g.add_edge(v(1), v(2));
        let model = FailureModel::new(0.2, 0.1);
        let est = mc_event_probability_parallel(&g, &model, 40_000, 4, 21, |g, inst, scratch| {
            bfs_into(
                g,
                &[v(0)],
                Direction::Forward,
                |e| inst.is_usable(e),
                |_| true,
                &mut scratch.ws,
            );
            scratch.ws.reached(v(2))
        });
        assert_eq!(est.trials, 40_000);
        assert!((est.p() - 0.64).abs() < 0.01, "estimate {}", est.p());
    }

    #[test]
    fn sliced_fallback_and_thread_counts_agree_exactly() {
        use ft_graph::ids::v;
        use ft_graph::sliced::sliced_reach_into;
        use ft_graph::traversal::{bfs_into, Direction};
        use ft_graph::DiGraph;
        // Sparse regime, so lane i of a block is bit-identical to the
        // i-th consecutive scalar sample: a lane-deciding event, the
        // all-lanes-undecided worst case (every trial through the
        // scalar fallback), and every thread count must produce the
        // *same* estimate — 10_070 trials leaves a 22-trial scalar tail.
        let mut g = DiGraph::new();
        g.add_vertices(3);
        g.add_edge(v(0), v(1));
        g.add_edge(v(1), v(2));
        let model = FailureModel::new(0.02, 0.01);
        fn lane_event(
            g: &DiGraph,
            s: &SlicedFailureMask,
            scratch: &mut TrialScratch,
        ) -> LaneVerdict {
            sliced_reach_into(
                g,
                &[(v(0), !0)],
                Direction::Forward,
                |e| s.usable_word(e.index()),
                |_| !0,
                &mut scratch.sws,
            );
            LaneVerdict::all(scratch.sws.reached_lanes(v(2)))
        }
        fn scalar_event(g: &DiGraph, inst: &FailureInstance, scratch: &mut TrialScratch) -> bool {
            bfs_into(
                g,
                &[v(0)],
                Direction::Forward,
                |e| inst.is_usable(e),
                |_| true,
                &mut scratch.ws,
            );
            scratch.ws.reached(v(2))
        }
        let sliced1 = mc_sliced_event_probability_parallel(
            &g,
            &model,
            10_070,
            1,
            9,
            lane_event,
            scalar_event,
        );
        let sliced4 = mc_sliced_event_probability_parallel(
            &g,
            &model,
            10_070,
            4,
            9,
            lane_event,
            scalar_event,
        );
        let fallback = mc_event_probability_parallel(&g, &model, 10_070, 3, 9, scalar_event);
        assert_eq!(
            sliced1, sliced4,
            "thread counts must not change the estimate"
        );
        assert_eq!(
            sliced1, fallback,
            "all-lanes-undecided fallback must equal the lane-deciding event"
        );
        // usable = not-open, so P = (1 − ε_open)² = 0.98²
        assert!(
            (sliced1.p() - 0.9604).abs() < 0.01,
            "estimate {}",
            sliced1.p()
        );
    }

    #[test]
    fn partially_decided_blocks_split_between_lane_and_scalar_paths() {
        use ft_graph::ids::v;
        use ft_graph::sliced::sliced_reach_into;
        use ft_graph::traversal::{bfs_into, Direction};
        use ft_graph::DiGraph;
        // Even lanes answered by word algebra, odd lanes forced through
        // the scalar fallback: the mixed driver must equal the pure
        // fallback driver exactly.
        let mut g = DiGraph::new();
        g.add_vertices(3);
        g.add_edge(v(0), v(1));
        g.add_edge(v(1), v(2));
        let model = FailureModel::new(0.03, 0.02);
        fn scalar_event(g: &DiGraph, inst: &FailureInstance, scratch: &mut TrialScratch) -> bool {
            bfs_into(
                g,
                &[v(0)],
                Direction::Forward,
                |e| inst.is_usable(e),
                |_| true,
                &mut scratch.ws,
            );
            scratch.ws.reached(v(2))
        }
        let mixed = mc_sliced_event_probability_parallel(
            &g,
            &model,
            4_096,
            2,
            31,
            |g, s, scratch| {
                sliced_reach_into(
                    g,
                    &[(v(0), !0)],
                    Direction::Forward,
                    |e| s.usable_word(e.index()),
                    |_| !0,
                    &mut scratch.sws,
                );
                LaneVerdict {
                    decided: 0x5555_5555_5555_5555,
                    success: scratch.sws.reached_lanes(v(2)),
                }
            },
            scalar_event,
        );
        let pure = mc_event_probability_parallel(&g, &model, 4_096, 2, 31, scalar_event);
        assert_eq!(mixed, pure);
    }

    #[test]
    fn merge_adds() {
        let a = Estimate {
            successes: 3,
            trials: 10,
        };
        let b = Estimate {
            successes: 7,
            trials: 20,
        };
        let m = a.merge(b);
        assert_eq!(m.successes, 10);
        assert_eq!(m.trials, 30);
    }

    #[test]
    fn binomial_sampler_mean() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut total = 0u64;
        for _ in 0..200 {
            total += binomial_sample(&mut rng, 100, 0.4);
        }
        let mean = total as f64 / 200.0;
        assert!((mean - 40.0).abs() < 2.0, "mean {mean}");
    }
}
