//! The Moore–Shannon hammock: an `(l, w)`-directed grid with terminals.
//!
//! The paper's Fig. 4 directed grid — `w` stages of `l` rows, edges
//! `(i,j) → (i,j+1)` and `(i,j) → (i+1,j+1)` — becomes a two-terminal
//! *hammock* when a source is wired to every first-stage vertex and every
//! last-stage vertex is wired to a sink. This is the reliability
//! amplifier behind Proposition 1 and the input/output interface stages
//! of the §6 construction.
//!
//! Analytic bounds (both proved by the arguments the paper uses in
//! Lemmas 3 and 7):
//!
//! * **open**: the `l` straight row paths are edge-disjoint, so
//!   `P[open] ≤ (1 − (1−ε₁)^{w+1})^l`;
//! * **short**: every source→sink connection has ≥ `w+1` switches and
//!   the number of simple undirected paths of length `L` from the source
//!   is ≤ `l·4^{L−1}`, so for ε₂ < ¼,
//!   `P[short] ≤ (l/4)·(4ε₂)^{w+1} / (1 − 4ε₂)`.

use crate::model::FailureModel;
use crate::reliability::{FailureProbs, TwoTerminal};
use ft_graph::{DiGraph, VertexId};

/// A hammock network: grid dimensions plus the materialised two-terminal
/// graph.
#[derive(Clone, Debug)]
pub struct Hammock {
    /// Rows `l` (the paper's first grid parameter).
    pub rows: usize,
    /// Stages `w` (the paper's second grid parameter).
    pub stages: usize,
    /// The two-terminal network (source, grid, sink).
    pub net: TwoTerminal,
}

impl Hammock {
    /// Builds the `(l, w)` hammock. Vertex layout: source = 0, sink = 1,
    /// grid vertex `(i, j)` (row `i ∈ 0..l`, stage `j ∈ 0..w`) at
    /// `2 + j·l + i`.
    pub fn new(rows: usize, stages: usize) -> Self {
        assert!(rows >= 1 && stages >= 1, "hammock needs l, w ≥ 1");
        let (l, w) = (rows, stages);
        let mut g = DiGraph::with_capacity(2 + l * w, 2 * l + (2 * l - 1) * (w - 1));
        let source = g.add_vertex();
        let sink = g.add_vertex();
        g.add_vertices(l * w);
        let at = |i: usize, j: usize| VertexId::from(2 + j * l + i);
        for i in 0..l {
            g.add_edge(source, at(i, 0));
        }
        for j in 0..w - 1 {
            for i in 0..l {
                g.add_edge(at(i, j), at(i, j + 1));
                if i + 1 < l {
                    g.add_edge(at(i, j), at(i + 1, j + 1));
                }
            }
        }
        for i in 0..l {
            g.add_edge(at(i, w - 1), sink);
        }
        Hammock {
            rows,
            stages,
            net: TwoTerminal {
                graph: g,
                source,
                sink,
            },
        }
    }

    /// Vertex id of grid position `(row, stage)`.
    pub fn grid_vertex(&self, row: usize, stage: usize) -> VertexId {
        assert!(row < self.rows && stage < self.stages);
        VertexId::from(2 + stage * self.rows + row)
    }

    /// Number of switches.
    pub fn size(&self) -> usize {
        self.net.graph.num_edges()
    }

    /// Depth (edges on the longest source → sink path) = `w + 1`.
    pub fn depth(&self) -> usize {
        self.stages + 1
    }

    /// Analytic upper bound on `P[open]` (see module docs).
    pub fn open_bound(&self, model: &FailureModel) -> f64 {
        open_bound(self.rows, self.stages, model.eps_open)
    }

    /// Analytic upper bound on `P[short]`; `+∞` if ε₂ ≥ ¼ (bound
    /// inapplicable).
    pub fn short_bound(&self, model: &FailureModel) -> f64 {
        short_bound(self.rows, self.stages, model.eps_close)
    }

    /// Both analytic bounds.
    pub fn bounds(&self, model: &FailureModel) -> FailureProbs {
        FailureProbs {
            p_open: self.open_bound(model),
            p_short: self.short_bound(model),
        }
    }
}

/// `P[open] ≤ (1 − (1−ε)^{w+1})^l` — the `l` straight row paths are
/// edge-disjoint and each conducts unless one of its `w+1` switches
/// open-fails.
pub fn open_bound(l: usize, w: usize, eps_open: f64) -> f64 {
    let per_row_ok = (1.0 - eps_open).powi(w as i32 + 1);
    (1.0 - per_row_ok).powi(l as i32)
}

/// `P[short] ≤ (l/4)·(4ε)^{w+1}/(1−4ε)` for ε < ¼, else `+∞`.
pub fn short_bound(l: usize, w: usize, eps_close: f64) -> f64 {
    if eps_close <= 0.0 {
        return 0.0;
    }
    if eps_close >= 0.25 {
        return f64::INFINITY;
    }
    let x = 4.0 * eps_close;
    (l as f64 / 4.0) * x.powi(w as i32 + 1) / (1.0 - x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reliability::Connectivity;

    #[test]
    fn shape_matches_formulas() {
        for (l, w) in [(1usize, 1usize), (2, 3), (4, 8), (5, 2)] {
            let h = Hammock::new(l, w);
            assert_eq!(h.net.graph.num_vertices(), 2 + l * w);
            assert_eq!(h.size(), 2 * l + (2 * l - 1) * (w - 1));
            assert_eq!(h.depth(), w + 1);
            assert!(ft_graph::traversal::is_acyclic(&h.net.graph));
            // depth measured on the graph agrees
            assert_eq!(
                ft_graph::traversal::dag_depth_between(
                    &h.net.graph,
                    &[h.net.source],
                    &[h.net.sink]
                ),
                Some(w as u32 + 1)
            );
        }
    }

    #[test]
    fn fig4_grid_dimensions() {
        // the paper's Fig. 4 is a (4, 8)-directed grid
        let h = Hammock::new(4, 8);
        assert_eq!(h.rows, 4);
        assert_eq!(h.stages, 8);
        // interior vertex degrees: out ≤ 2, in ≤ 2
        for j in 1..7 {
            for i in 0..4 {
                let v = h.grid_vertex(i, j);
                assert!(h.net.graph.out_degree(v) <= 2);
                assert!(h.net.graph.in_degree(v) <= 2);
            }
        }
    }

    #[test]
    fn exact_probs_respect_bounds_tiny() {
        // (2,2) hammock has 2·2 + 3·1 = 7 edges — enumerable
        let h = Hammock::new(2, 2);
        assert_eq!(h.size(), 7);
        let model = FailureModel::symmetric(0.05);
        let exact = h.net.exact_failure_probs(&model, Connectivity::Undirected);
        let bounds = h.bounds(&model);
        assert!(
            exact.p_open <= bounds.p_open + 1e-12,
            "open {} > bound {}",
            exact.p_open,
            bounds.p_open
        );
        assert!(
            exact.p_short <= bounds.p_short + 1e-12,
            "short {} > bound {}",
            exact.p_short,
            bounds.p_short
        );
    }

    #[test]
    fn mc_probs_respect_bounds_medium() {
        let h = Hammock::new(6, 6);
        let model = FailureModel::symmetric(0.08);
        let (open, short) = h
            .net
            .mc_failure_probs(&model, Connectivity::Undirected, 20_000, 17);
        let bounds = h.bounds(&model);
        // Wilson lower bounds must not exceed the analytic upper bounds
        assert!(
            open.wilson95().0 <= bounds.p_open,
            "MC open {} vs bound {}",
            open.p(),
            bounds.p_open
        );
        assert!(short.wilson95().0 <= bounds.p_short);
    }

    #[test]
    fn bigger_hammock_is_more_reliable() {
        let model = FailureModel::symmetric(0.1);
        let small = Hammock::new(3, 3).bounds(&model);
        let large = Hammock::new(8, 8).bounds(&model);
        assert!(large.p_open < small.p_open);
        assert!(large.p_short < small.p_short);
    }

    #[test]
    fn bound_edge_cases() {
        assert_eq!(short_bound(4, 4, 0.0), 0.0);
        assert!(short_bound(4, 4, 0.3).is_infinite());
        assert_eq!(open_bound(4, 4, 0.0), 0.0);
        assert!((open_bound(1, 0, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_row_hammock_is_a_chain() {
        let h = Hammock::new(1, 3);
        assert_eq!(h.size(), 2 + 2); // 2 terminal links + 2 straight
        assert_eq!(h.depth(), 4);
    }
}
